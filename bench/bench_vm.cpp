//===- bench_vm.cpp - Bytecode VM vs tree-walker dispatch cost ------------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// The dynamic oracle runs every fuzz program and every corpus program
// under `--run`; its dispatch cost bounds campaign throughput. This
// benchmark pits the two observationally-equivalent engines against
// each other on loop-heavy synthetics where per-node overhead
// dominates: a counted arithmetic loop, a recursive call tree, and a
// tracked-object field workload that exercises the protocol substrate
// on every iteration. Same checked AST, same Machine substrate — the
// measured difference is purely AST re-traversal vs compiled bytecode
// dispatch. The speedup lands in EXPERIMENTS.md.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "sema/Checker.h"
#include "vm/VM.h"

#include <benchmark/benchmark.h>

using namespace vault;

namespace {

/// Arithmetic loop: the densest dispatch workload (no calls, no
/// protocol events — every step is eval overhead).
const char *LoopSrc = R"(
int work(int n) {
  int i = 0;
  int acc = 0;
  while (i < n) {
    acc = acc + i * 3 - (i / 2);
    i = i + 1;
  }
  return acc;
}
void main() { work(20000); }
)";

/// Call-heavy workload: frame setup, parameter binding, return-value
/// plumbing.
const char *CallSrc = R"(
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
void main() { fib(18); }
)";

/// Field/lvalue workload through a tracked cell: deref checks and the
/// lvalue lattice on every iteration.
const char *FieldSrc = R"(
interface REGION {
  type region;
  tracked(R) region create() [new R];
  void delete(tracked(R) region) [-R];
}
extern module Region : REGION;
struct point { int x; int y; }
void main() {
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {x=0; y=0;};
  int i = 0;
  while (i < 5000) {
    pt.x = pt.x + 1;
    pt.y = pt.y + pt.x;
    i = i + 1;
  }
  Region.delete(rgn);
}
)";

std::unique_ptr<VaultCompiler> checked(const char *Src) {
  auto C = std::make_unique<VaultCompiler>();
  C->addSource("bench_vm.vlt", Src);
  C->check();
  return C;
}

void runWalker(benchmark::State &State, const char *Src) {
  auto C = checked(Src);
  for (auto _ : State) {
    interp::Interp I(*C);
    bool Ok = I.run("main");
    benchmark::DoNotOptimize(Ok);
  }
}

void runVm(benchmark::State &State, const char *Src) {
  auto C = checked(Src);
  for (auto _ : State) {
    vm::Vm V(*C);
    bool Ok = V.run("main");
    benchmark::DoNotOptimize(Ok);
  }
}

void BM_Walker_Loop(benchmark::State &State) { runWalker(State, LoopSrc); }
void BM_Vm_Loop(benchmark::State &State) { runVm(State, LoopSrc); }
void BM_Walker_Calls(benchmark::State &State) { runWalker(State, CallSrc); }
void BM_Vm_Calls(benchmark::State &State) { runVm(State, CallSrc); }
void BM_Walker_TrackedFields(benchmark::State &State) {
  runWalker(State, FieldSrc);
}
void BM_Vm_TrackedFields(benchmark::State &State) { runVm(State, FieldSrc); }

BENCHMARK(BM_Walker_Loop)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Vm_Loop)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Walker_Calls)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Vm_Calls)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Walker_TrackedFields)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Vm_TrackedFields)->Unit(benchmark::kMillisecond);

/// One-shot compile cost: what the VM pays before its first dispatch
/// (the walker's "compile" is free). Kept visible so the break-even
/// point — a handful of executed statements — stays documented.
void BM_Vm_CompileOnly(benchmark::State &State) {
  auto C = checked(LoopSrc);
  const FuncDecl *Main = nullptr;
  for (const Decl *D : C->ast().program().Decls)
    if (const auto *F = dyn_cast<FuncDecl>(D); F && F->name() == "main")
      Main = F;
  for (auto _ : State) {
    auto Ch = vm::compileFunction(*C, Main);
    benchmark::DoNotOptimize(Ch);
  }
}
BENCHMARK(BM_Vm_CompileOnly);

} // namespace
