//===- bench_case_study.cpp - The paper's evaluation tables (E9, E11) -----===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// Prints the reproduction of the paper's evaluation:
//
//   Table A (E9)  — the §4 case-study line counts: Vault driver source
//                   vs erased C, per-module breakdown, checker timing.
//                   Paper's datum: C 4900 lines -> Vault 5200 lines.
//   Table B (E1-E8) — verdicts for every reproduced figure/section.
//   Table C (E11) — seeded-defect detection: static checker vs one
//                   dynamic test run.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "interp/Interp.h"
#include "lower/CEmitter.h"

#include <chrono>
#include <cstdio>

using namespace vault;

namespace {

void hr() {
  std::printf("%.*s\n", 96,
              "------------------------------------------------------------"
              "------------------------------------");
}

void tableA() {
  std::printf("\nTable A (E9): the section-4 case study\n");
  hr();
  auto Start = std::chrono::steady_clock::now();
  auto C = corpus::check("driver/floppy");
  double CheckMs = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  std::string Src = corpus::load("driver/floppy");
  size_t VaultLines = CEmitter::countCodeLines(Src);
  CEmitter E(*C);
  std::string CSrc = E.emitProgram();
  size_t CLines = CEmitter::countCodeLines(CSrc);

  std::printf("%-46s %s\n", "driver type-checks:",
              C->diags().hasErrors() ? "NO" : "yes (0 protocol errors)");
  std::printf("%-46s %u\n", "functions verified:",
              C->stats().FunctionsChecked);
  std::printf("%-46s %zu\n", "Vault source lines (floppy.vlt + kernel iface):",
              VaultLines);
  std::printf("%-46s %zu\n", "emitted C lines (keys/guards erased):", CLines);
  std::printf("%-46s %.2f   (paper: 5200/4900 = 1.06)\n",
              "Vault/C ratio:",
              static_cast<double>(VaultLines) / static_cast<double>(CLines));
  std::printf("%-46s %.1f ms\n", "end-to-end check time:", CheckMs);
  std::printf("%-46s %zu\n", "keys tracked while checking:",
              C->types().keys().size());
}

void tableB() {
  std::printf("\nTable B (E1-E8): paper figures, expected vs observed\n");
  hr();
  std::printf("%-42s %-10s %-10s %-6s %s\n", "program", "expected",
              "observed", "match", "paper artifact");
  hr();
  unsigned Matches = 0, Total = 0;
  for (const auto &P : corpus::index()) {
    if (P.Name.rfind("defects/", 0) == 0)
      continue; // Table C.
    auto C = corpus::check(P.Name);
    bool Rejected = C->diags().hasErrors();
    bool Match = Rejected != P.ExpectAccept;
    if (Match)
      for (DiagId Id : P.MustReport)
        if (!C->diags().has(Id))
          Match = false;
    ++Total;
    Matches += Match;
    std::printf("%-42s %-10s %-10s %-6s %s\n", P.Name.c_str(),
                P.ExpectAccept ? "accept" : "reject",
                Rejected ? "reject" : "accept", Match ? "yes" : "NO",
                P.PaperRef.c_str());
  }
  hr();
  std::printf("verdict agreement with the paper: %u / %u\n", Matches, Total);
}

void tableC() {
  std::printf("\nTable C (E11): seeded defects — static checking vs one "
              "dynamic test run\n");
  hr();
  std::printf("%-42s %-10s %-12s %s\n", "defect program", "static",
              "dynamic run", "defect class");
  hr();
  unsigned Defects = 0, Static = 0, Dynamic = 0;
  for (const auto &P : corpus::index()) {
    if (P.Name.rfind("defects/", 0) != 0 || P.ExpectAccept)
      continue;
    ++Defects;
    auto C = corpus::check(P.Name);
    bool Caught = C->diags().hasErrors();
    Static += Caught;
    std::string Dyn = "n/a";
    if (P.Runnable) {
      interp::Interp I(*C);
      I.run("main");
      unsigned V = I.totalViolations() +
                   static_cast<unsigned>(I.regions().leakedRegions().size()) +
                   static_cast<unsigned>(I.sockets().leakedSockets().size()) +
                   static_cast<unsigned>(I.gdi().leakedDcs().size());
      Dyn = V > 0 ? "CAUGHT" : "missed";
      Dynamic += V > 0;
    }
    std::printf("%-42s %-10s %-12s %s\n", P.Name.c_str(),
                Caught ? "CAUGHT" : "missed", Dyn.c_str(),
                P.PaperRef.c_str());
  }
  hr();
  std::printf("defects: %u   caught statically: %u (%.0f%%)   caught by one "
              "test run: %u (%.0f%%)\n",
              Defects, Static, 100.0 * Static / Defects, Dynamic,
              100.0 * Dynamic / Defects);
  std::printf("\nShape vs paper: Vault's exhaustive analysis catches every "
              "protocol defect at compile\ntime; dynamic testing misses "
              "cold-path bugs and silent leaks (paper sections 1, 4).\n");
}

} // namespace

int main() {
  std::printf("Vault case-study reproduction — DeLine & Fähndrich, "
              "PLDI 2001\n");
  tableA();
  tableB();
  tableC();
  return 0;
}
