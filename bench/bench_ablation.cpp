//===- bench_ablation.cpp - Checker design-choice ablations (B5) ----------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// Quantifies the design decisions DESIGN.md calls out:
//
//  * the held-key set is a per-point map — cost scales with the number
//    of *simultaneously live* keys (sweep below), which the paper keeps
//    small by design ("the global state ... intentionally kept simple
//    to enable an efficient decision procedure", §2.1);
//  * guard checks run at every access — guard-density sweep;
//  * join canonicalization runs per branch — switch-arm sweep;
//  * names are checked per call — call-density sweep.
//
//===----------------------------------------------------------------------===//

#include "sema/Checker.h"

#include <benchmark/benchmark.h>

#include <sstream>

using namespace vault;

namespace {

const char *Prelude = R"(
interface REGION {
  type region;
  tracked(R) region create() [new R];
  void delete(tracked(R) region) [-R];
}
extern module Region : REGION;
struct point { int x; int y; }
)";

/// K regions live at the same time, then all deleted.
void BM_LiveKeysSweep(benchmark::State &State) {
  const unsigned K = static_cast<unsigned>(State.range(0));
  std::ostringstream OS;
  OS << Prelude << "void f() {\n";
  for (unsigned I = 0; I != K; ++I)
    OS << "  tracked(K" << I << ") region r" << I << " = Region.create();\n";
  // Touch each region between allocations so every statement is
  // checked against the full held set.
  for (unsigned I = 0; I != K; ++I)
    OS << "  K" << I << ":point p" << I << " = new(r" << I
       << ") point {x=" << I << ";};\n";
  for (unsigned I = 0; I != K; ++I)
    OS << "  p" << I << ".x++;\n";
  for (unsigned I = 0; I != K; ++I)
    OS << "  Region.delete(r" << I << ");\n";
  OS << "}\n";
  std::string Src = OS.str();
  for (auto _ : State) {
    VaultCompiler C;
    C.addSource("ablate.vlt", Src);
    benchmark::DoNotOptimize(C.check());
  }
  State.counters["live_keys"] = K;
  State.SetItemsProcessed(State.iterations() * K * 4);
}
BENCHMARK(BM_LiveKeysSweep)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

/// N guarded accesses against one held key.
void BM_GuardDensitySweep(benchmark::State &State) {
  const unsigned N = static_cast<unsigned>(State.range(0));
  std::ostringstream OS;
  OS << Prelude << "void f() {\n"
     << "  tracked(R) region r = Region.create();\n"
     << "  R:point p = new(r) point {x=0;};\n";
  for (unsigned I = 0; I != N; ++I)
    OS << "  p.x = p.x + " << I << ";\n";
  OS << "  Region.delete(r);\n}\n";
  std::string Src = OS.str();
  for (auto _ : State) {
    VaultCompiler C;
    C.addSource("ablate.vlt", Src);
    benchmark::DoNotOptimize(C.check());
  }
  State.counters["accesses"] = N;
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_GuardDensitySweep)->Arg(8)->Arg(64)->Arg(512);

/// A switch with N arms, each restoring the same keyed variant: joins
/// scale with arm count.
void BM_SwitchArmSweep(benchmark::State &State) {
  const unsigned N = static_cast<unsigned>(State.range(0));
  std::ostringstream OS;
  OS << Prelude << "variant choice [ ";
  for (unsigned I = 0; I != N; ++I)
    OS << (I ? " | " : "") << "'C" << I;
  OS << " ];\n";
  OS << "void f(choice c) {\n"
     << "  tracked(R) region r = Region.create();\n"
     << "  switch (c) {\n";
  for (unsigned I = 0; I != N; ++I)
    OS << "    case 'C" << I << ":\n      Region.delete(r);\n";
  OS << "  }\n}\n";
  std::string Src = OS.str();
  for (auto _ : State) {
    VaultCompiler C;
    C.addSource("ablate.vlt", Src);
    benchmark::DoNotOptimize(C.check());
  }
  State.counters["arms"] = N;
}
BENCHMARK(BM_SwitchArmSweep)->Arg(2)->Arg(8)->Arg(32);

/// N calls instantiating a polymorphic signature (unification cost).
void BM_CallDensitySweep(benchmark::State &State) {
  const unsigned N = static_cast<unsigned>(State.range(0));
  std::ostringstream OS;
  OS << Prelude
     << "void touch(tracked(K) region r) [K] { }\n"
     << "void f() {\n"
     << "  tracked(R) region r = Region.create();\n";
  for (unsigned I = 0; I != N; ++I)
    OS << "  touch(r);\n";
  OS << "  Region.delete(r);\n}\n";
  std::string Src = OS.str();
  for (auto _ : State) {
    VaultCompiler C;
    C.addSource("ablate.vlt", Src);
    benchmark::DoNotOptimize(C.check());
  }
  State.counters["calls"] = N;
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_CallDensitySweep)->Arg(8)->Arg(64)->Arg(512);

/// Tracing ablation: the cost of recording the held-key set per
/// statement (the --trace-keys tooling mode) vs plain checking.
void BM_TracingOverhead(benchmark::State &State) {
  std::ostringstream OS;
  OS << Prelude << "void f() {\n"
     << "  tracked(R) region r = Region.create();\n"
     << "  R:point p = new(r) point {x=0;};\n";
  for (unsigned I = 0; I != 128; ++I)
    OS << "  p.x = p.x + 1;\n";
  OS << "  Region.delete(r);\n}\n";
  std::string Src = OS.str();
  const bool Tracing = State.range(0) != 0;
  for (auto _ : State) {
    VaultCompiler C;
    if (Tracing)
      C.enableKeyTrace();
    C.addSource("ablate.vlt", Src);
    benchmark::DoNotOptimize(C.check());
    benchmark::DoNotOptimize(C.keyTrace().size());
  }
  State.counters["tracing"] = Tracing;
}
BENCHMARK(BM_TracingOverhead)->Arg(0)->Arg(1);

} // namespace
