//===- bench_server.cpp - Server observability overhead -------------------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// Pins the cost of the daemon's telemetry layer, in the bench_trace
// tradition. The contract is that a Workspace with no telemetry
// attached pays a single branch per frame; compare BM_RequestBare
// against BM_RequestTelemetry to see what metrics + log + tracer cost
// per request, and the sink microbenchmarks for each piece alone. The
// request used is `stats` — all dispatch, no compilation — so the
// numbers isolate the server layer rather than the checker.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace vault;
using namespace vault::server;

namespace {

FrameReader::Frame statsFrame() {
  FrameReader::Frame F;
  F.K = FrameReader::Kind::Ok;
  F.Line = "{\"jsonrpc\": \"2.0\", \"id\": 1, \"method\": \"stats\"}";
  return F;
}

/// Baseline: the instrumented dispatch path with no sinks attached —
/// the configuration a plain `vaultd` session would run if telemetry
/// were opt-out rather than always-aggregating.
void BM_RequestBare(benchmark::State &State) {
  Config Cfg;
  Admission Gate{8, 30000};
  CheckMemoryStore Store;
  Workspace Ws(Cfg, Gate, Store);
  FrameReader::Frame F = statsFrame();
  for (auto _ : State)
    benchmark::DoNotOptimize(Ws.handleFrame(F));
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()));
}
BENCHMARK(BM_RequestBare);

/// Aggregation only: what every real vaultd session pays (the
/// ServerMetrics registry is always live so `metrics`/`health` can
/// answer).
void BM_RequestMetricsOnly(benchmark::State &State) {
  Config Cfg;
  Admission Gate{8, 30000};
  CheckMemoryStore Store;
  ServerMetrics SM;
  Workspace Ws(Cfg, Gate, Store);
  Telemetry Tel;
  Tel.Metrics = &SM;
  Ws.setTelemetry(Tel);
  FrameReader::Frame F = statsFrame();
  for (auto _ : State)
    benchmark::DoNotOptimize(Ws.handleFrame(F));
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()));
}
BENCHMARK(BM_RequestMetricsOnly);

/// The full stack: aggregation, one JSONL event written and flushed to
/// a tmpfile, and a request span recorded.
void BM_RequestTelemetry(benchmark::State &State) {
  Config Cfg;
  Admission Gate{8, 30000};
  CheckMemoryStore Store;
  ServerMetrics SM;
  std::FILE *Tmp = std::tmpfile();
  ServerLog Log(Tmp, /*Owned=*/false);
  Tracer Trc;
  Workspace Ws(Cfg, Gate, Store);
  Telemetry Tel;
  Tel.Log = &Log;
  Tel.Metrics = &SM;
  Tel.Trc = &Trc;
  Ws.setTelemetry(Tel);
  FrameReader::Frame F = statsFrame();
  for (auto _ : State)
    benchmark::DoNotOptimize(Ws.handleFrame(F));
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()));
  std::fclose(Tmp);
}
BENCHMARK(BM_RequestTelemetry);

/// The aggregator alone: one countRequest per iteration.
void BM_MetricsCountRequest(benchmark::State &State) {
  ServerMetrics SM;
  for (auto _ : State)
    SM.countRequest("check", 0, 120, 0, 64, 256);
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()));
}
BENCHMARK(BM_MetricsCountRequest);

/// The log sink alone: build, write, and flush one request-shaped
/// event per iteration.
void BM_LogWriteEvent(benchmark::State &State) {
  std::FILE *Tmp = std::tmpfile();
  ServerLog Log(Tmp, /*Owned=*/false);
  for (auto _ : State)
    Log.write(ServerLog::Event("request")
                  .field("ts_us", uint64_t(12345))
                  .field("sid", uint64_t(1))
                  .field("rid", uint64_t(2))
                  .field("method", "check")
                  .field("outcome", "ok")
                  .field("queue_wait_us", uint64_t(0))
                  .field("handle_us", uint64_t(120))
                  .field("bytes_in", uint64_t(64))
                  .field("bytes_out", uint64_t(256)));
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()));
  std::fclose(Tmp);
}
BENCHMARK(BM_LogWriteEvent);

/// Rendering the full pre-seeded registry (the `metrics` method's
/// dominant cost).
void BM_MetricsRender(benchmark::State &State) {
  ServerMetrics SM;
  for (int I = 0; I < 1000; ++I)
    SM.countRequest("check", 0, 120, 0, 64, 256);
  for (auto _ : State)
    benchmark::DoNotOptimize(SM.renderJson());
}
BENCHMARK(BM_MetricsRender);

} // namespace
