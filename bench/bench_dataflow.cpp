//===- bench_dataflow.cpp - CFG construction and joins (B2) ---------------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// Costs of the flow machinery over program structure: CFG
// construction, flow-state joins with key canonicalization, and loop
// fixpoint inference as the loop body grows.
//
//===----------------------------------------------------------------------===//

#include "sema/Cfg.h"
#include "sema/Checker.h"
#include "sema/FlowState.h"

#include <benchmark/benchmark.h>

#include <sstream>

using namespace vault;

namespace {

std::string branchyFunction(unsigned Branches) {
  std::ostringstream OS;
  OS << "void f(bool b, int n) {\n  int acc = 0;\n";
  for (unsigned I = 0; I != Branches; ++I)
    OS << "  if (b) { acc = acc + " << I << "; } else { acc = acc - " << I
       << "; }\n";
  OS << "}\n";
  return OS.str();
}

const FuncDecl *firstFunc(VaultCompiler &C) {
  for (const Decl *D : C.ast().program().Decls)
    if (const auto *F = dyn_cast<FuncDecl>(D); F && F->body())
      return F;
  return nullptr;
}

void BM_CfgBuild(benchmark::State &State) {
  VaultCompiler C;
  C.addSource("b.vlt", branchyFunction(static_cast<unsigned>(State.range(0))));
  const FuncDecl *F = firstFunc(C);
  size_t Nodes = 0;
  for (auto _ : State) {
    Cfg G = Cfg::build(F);
    Nodes = G.numNodes();
    benchmark::DoNotOptimize(G.numEdges());
  }
  State.counters["nodes"] = static_cast<double>(Nodes);
}
BENCHMARK(BM_CfgBuild)->Arg(4)->Arg(32)->Arg(256);

void BM_JoinStates(benchmark::State &State) {
  TypeContext TC;
  const size_t N = static_cast<size_t>(State.range(0));
  FlowState A, B;
  // N variables, each bound to a *different* fresh key on each side:
  // the join must canonicalize all of them.
  std::vector<const Type *> TypesA, TypesB;
  for (size_t I = 0; I != N; ++I) {
    KeySym Ka = TC.keys().create("a", KeyTable::Origin::Local, SourceLoc{});
    KeySym Kb = TC.keys().create("b", KeyTable::Origin::Local, SourceLoc{});
    const Type *Ta = TC.make<TrackedType>(TC.intType(), Ka);
    const Type *Tb = TC.make<TrackedType>(TC.intType(), Kb);
    A.Vars[reinterpret_cast<const void *>(I + 1)] = Ta;
    B.Vars[reinterpret_cast<const void *>(I + 1)] = Tb;
    A.Held.add(Ka, StateRef::top());
    B.Held.add(Kb, StateRef::top());
  }
  for (auto _ : State) {
    JoinResult R = joinStates(TC, A, B);
    benchmark::DoNotOptimize(R.Ok);
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_JoinStates)->Arg(1)->Arg(8)->Arg(64);

void BM_CheckDeepBranches(benchmark::State &State) {
  std::string Src = branchyFunction(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    VaultCompiler C;
    C.addSource("b.vlt", Src);
    benchmark::DoNotOptimize(C.check());
  }
}
BENCHMARK(BM_CheckDeepBranches)->Arg(4)->Arg(32)->Arg(256);

void BM_LoopFixpoint(benchmark::State &State) {
  // A loop whose body re-binds a tracked variable: the invariant needs
  // canonicalization to converge.
  std::ostringstream OS;
  OS << R"(
interface REGION {
  type region;
  tracked(R) region create() [new R];
  void delete(tracked(R) region) [-R];
}
extern module Region : REGION;
void f(int n) {
  tracked region r = Region.create();
  int i = 0;
  while (i < n) {
)";
  for (int I = 0; I != State.range(0); ++I)
    OS << "    i = i + 1;\n";
  OS << R"(
    Region.delete(r);
    r = Region.create();
    i++;
  }
  Region.delete(r);
}
)";
  std::string Src = OS.str();
  for (auto _ : State) {
    VaultCompiler C;
    C.addSource("loop.vlt", Src);
    bool Ok = C.check();
    if (!Ok) {
      State.SkipWithError("loop program failed to check");
      return;
    }
  }
}
BENCHMARK(BM_LoopFixpoint)->Arg(1)->Arg(16)->Arg(64);

} // namespace
