//===- bench_region.cpp - Region allocator vs malloc (B3) -----------------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// The substrate claim behind §2.2: regions amortize deallocation (one
// bulk free instead of N individual frees) at bump-pointer allocation
// speed — the reason systems code wants them, and hence wants the
// safety Vault adds on top.
//
//===----------------------------------------------------------------------===//

#include "runtime/Region.h"

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <vector>

using namespace vault::rt;

namespace {

struct Node {
  uint64_t A, B;
};

void BM_MallocFreeIndividual(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  std::vector<Node *> Ptrs(N);
  for (auto _ : State) {
    for (size_t I = 0; I != N; ++I) {
      Ptrs[I] = static_cast<Node *>(std::malloc(sizeof(Node)));
      Ptrs[I]->A = I;
    }
    benchmark::DoNotOptimize(Ptrs.data());
    for (size_t I = 0; I != N; ++I)
      std::free(Ptrs[I]);
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_MallocFreeIndividual)->Arg(64)->Arg(1024)->Arg(16384);

void BM_RegionBulkFree(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  for (auto _ : State) {
    Region R;
    for (size_t I = 0; I != N; ++I) {
      Node *P = R.create<Node>();
      P->A = I;
      benchmark::DoNotOptimize(P);
    }
    // Region destruction is the single bulk free.
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_RegionBulkFree)->Arg(64)->Arg(1024)->Arg(16384);

void BM_RegionReuseViaReset(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  Region R;
  for (auto _ : State) {
    for (size_t I = 0; I != N; ++I)
      benchmark::DoNotOptimize(R.create<Node>());
    R.reset();
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_RegionReuseViaReset)->Arg(1024)->Arg(16384);

void BM_ManagerCheckedAllocation(benchmark::State &State) {
  // The dynamically-checked handle path (what a "testing" deployment
  // pays); contrast with the raw region above — Vault's static checks
  // let compiled code use the raw path.
  const size_t N = static_cast<size_t>(State.range(0));
  for (auto _ : State) {
    RegionManager M;
    auto H = M.create();
    for (size_t I = 0; I != N; ++I)
      benchmark::DoNotOptimize(M.allocate(H, sizeof(Node)));
    M.destroy(H);
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_ManagerCheckedAllocation)->Arg(1024)->Arg(16384);

} // namespace
