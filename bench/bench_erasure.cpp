//===- bench_erasure.cpp - Zero run-time cost of keys (E10) ---------------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// §2.1: "Keys are purely compile-time entities that have no impact on
// run-time representations or execution time." Vault-compiled code
// accesses resources directly; the alternative — dynamic protocol
// checking — pays per access. This benchmark measures three versions
// of the same workload:
//
//   raw        what vaultc-emitted C does (statically verified),
//   checked    per-access dynamic handle validation (the run-time
//              checking a safe language without typestate needs),
//   emitted-C  the actual C text emitted for the workload, examined
//              for artifacts (counted, not timed — see also
//              tests/lower/CEmitterTest.cpp).
//
//===----------------------------------------------------------------------===//

#include "lower/CEmitter.h"
#include "runtime/Region.h"
#include "sema/Checker.h"

#include <benchmark/benchmark.h>

using namespace vault;
using namespace vault::rt;

namespace {

struct Point {
  int64_t X, Y;
};

void BM_RawAccess(benchmark::State &State) {
  // The statically-verified path: direct pointers, no checks — exactly
  // what the C emitted from a checked Vault program executes.
  Region R;
  const size_t N = 1024;
  std::vector<Point *> Pts;
  for (size_t I = 0; I != N; ++I)
    Pts.push_back(R.create<Point>(int64_t(I), int64_t(0)));
  for (auto _ : State) {
    int64_t Sum = 0;
    for (Point *P : Pts)
      Sum += P->X++;
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_RawAccess);

void BM_DynamicallyCheckedAccess(benchmark::State &State) {
  // The run-time-checked alternative: every access validates the
  // region handle first.
  RegionManager M;
  auto H = M.create();
  const size_t N = 1024;
  std::vector<Point *> Pts;
  for (size_t I = 0; I != N; ++I) {
    auto *P = static_cast<Point *>(M.allocate(H, sizeof(Point)));
    P->X = int64_t(I);
    Pts.push_back(P);
  }
  for (auto _ : State) {
    int64_t Sum = 0;
    for (Point *P : Pts) {
      if (!M.isLive(H)) // The per-access liveness check.
        break;
      Sum += P->X++;
    }
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_DynamicallyCheckedAccess);

void BM_EmitGuardedProgram(benchmark::State &State) {
  // Lowering itself, plus the erasure assertions: the emitted C
  // contains zero protocol artifacts regardless of how heavily the
  // source is annotated.
  static const char *Src = R"(
interface REGION {
  type region;
  tracked(R) region create() [new R];
  void delete(tracked(R) region) [-R];
}
extern module Region : REGION;
struct point { int x; int y; }
void hot(int n) {
  tracked(R) region rgn = Region.create();
  R:point p = new(rgn) point {x=0; y=0;};
  int i = 0;
  while (i < n) {
    p.x = p.x + i;
    i++;
  }
  Region.delete(rgn);
}
)";
  size_t Artifacts = 1;
  for (auto _ : State) {
    VaultCompiler C;
    C.addSource("hot.vlt", Src);
    if (!C.check()) {
      State.SkipWithError("program failed to check");
      return;
    }
    CEmitter E(C);
    std::string CSrc = E.emitProgram();
    Artifacts = 0;
    for (const char *Marker : {"tracked", "held", "[-R]", "@raw", "new R"})
      if (CSrc.find(Marker) != std::string::npos)
        ++Artifacts;
    benchmark::DoNotOptimize(CSrc.size());
  }
  State.counters["protocol_artifacts_in_C"] = static_cast<double>(Artifacts);
}
BENCHMARK(BM_EmitGuardedProgram);

} // namespace
