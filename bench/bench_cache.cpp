//===- bench_cache.cpp - Incremental-check cache speedup ------------------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// Measures the incremental checking subsystem: a warm cache replaces
// per-function flow checks with fingerprint computation plus
// diagnostic replay, so the interesting ratio is cold check() vs warm
// check() at growing program sizes. Also isolates the fixed costs a
// cached run still pays: fingerprinting (re-lex + dependency closure)
// and cache-entry IO.
//
//===----------------------------------------------------------------------===//

#include "sema/Checker.h"

#include <benchmark/benchmark.h>

#include <filesystem>
#include <sstream>

using namespace vault;

namespace {

/// N functions, each allocating, touching and deleting a region — a
/// body with real flow-checking work — plus a call to its predecessor
/// so the dependency closure is non-trivial.
std::string synthProgram(unsigned N) {
  std::ostringstream OS;
  OS << R"(
interface REGION {
  type region;
  tracked(R) region create() [new R];
  void delete(tracked(R) region) [-R];
}
extern module Region : REGION;
struct point { int x; int y; }
)";
  for (unsigned I = 0; I != N; ++I) {
    OS << "void f" << I << "() {\n"
       << "  tracked(K" << I << ") region r = Region.create();\n"
       << "  K" << I << ":point p = new(r) point {x=1; y=2;};\n"
       << "  p.x++;\n";
    if (I)
      OS << "  f" << I - 1 << "();\n";
    OS << "  Region.delete(r);\n}\n";
  }
  return OS.str();
}

std::string benchCacheDir(const std::string &Tag) {
  std::string Dir =
      (std::filesystem::temp_directory_path() / ("vault-bench-" + Tag))
          .string();
  std::filesystem::remove_all(Dir);
  return Dir;
}

/// Baseline: full check, no cache.
void BM_ColdCheck(benchmark::State &State) {
  std::string Src = synthProgram(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    VaultCompiler C;
    C.addSource("bench.vlt", Src);
    benchmark::DoNotOptimize(C.check());
  }
}
BENCHMARK(BM_ColdCheck)->Arg(8)->Arg(32)->Arg(128);

/// Warm cache: every flow check replaced by fingerprint + replay.
void BM_WarmCheck(benchmark::State &State) {
  const unsigned N = static_cast<unsigned>(State.range(0));
  std::string Src = synthProgram(N);
  std::string Dir = benchCacheDir("warm-" + std::to_string(N));
  {
    VaultCompiler Seed;
    Seed.setCacheDir(Dir);
    Seed.addSource("bench.vlt", Src);
    Seed.check();
  }
  for (auto _ : State) {
    VaultCompiler C;
    C.setCacheDir(Dir);
    C.addSource("bench.vlt", Src);
    benchmark::DoNotOptimize(C.check());
    if (C.stats().FlowChecksRun != 0)
      State.SkipWithError("cache did not hit");
  }
  std::filesystem::remove_all(Dir);
}
BENCHMARK(BM_WarmCheck)->Arg(8)->Arg(32)->Arg(128);

/// One edited function among N: the incremental case an editor sees.
void BM_OneFunctionInvalidated(benchmark::State &State) {
  const unsigned N = static_cast<unsigned>(State.range(0));
  std::string Src = synthProgram(N);
  // Editing f0's body (not its signature) re-checks only f0: callers
  // depend on signatures alone.
  std::string Edited = Src;
  size_t P = Edited.find("p.x++;");
  Edited.replace(P, 6, "p.y++;");
  std::string Dir = benchCacheDir("edit-" + std::to_string(N));
  {
    VaultCompiler Seed;
    Seed.setCacheDir(Dir);
    Seed.addSource("bench.vlt", Src);
    Seed.check();
  }
  for (auto _ : State) {
    VaultCompiler C;
    C.setCacheDir(Dir);
    C.addSource("bench.vlt", Edited);
    benchmark::DoNotOptimize(C.check());
    if (C.stats().FlowChecksRun > 1)
      State.SkipWithError("body edit invalidated more than one function");
  }
  std::filesystem::remove_all(Dir);
}
BENCHMARK(BM_OneFunctionInvalidated)->Arg(32)->Arg(128);

} // namespace
