//===- bench_checker.cpp - Checker throughput (B1) ------------------------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// Measures end-to-end front-end throughput (parse + elaborate + flow
// check) against synthetically generated programs of increasing size,
// plus the real corpus. Reports lines/second. The paper reports no
// checker-performance numbers; this quantifies that the approach is
// interactive-speed, which §5 implies by positioning Vault as a
// compiler.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "lower/CEmitter.h"
#include "sema/Checker.h"

#include <benchmark/benchmark.h>

#include <sstream>

using namespace vault;

namespace {

constexpr const char *SynthPrelude = R"(
interface REGION {
  type region;
  tracked(R) region create() [new R];
  void delete(tracked(R) region) [-R];
}
extern module Region : REGION;
struct point { int x; int y; }
)";

/// Functions [\p Begin, \p End) of the synthetic program, each
/// creating, using, and deleting regions with branches and a loop.
std::string synthesizeFunctions(unsigned Begin, unsigned End) {
  std::ostringstream OS;
  for (unsigned F = Begin; F != End; ++F) {
    OS << "void work" << F << "(int n, bool b) {\n"
       << "  tracked(R) region rgn = Region.create();\n"
       << "  R:point p = new(rgn) point {x=n; y=0;};\n"
       << "  int i = 0;\n"
       << "  while (i < n) {\n"
       << "    if (b) {\n"
       << "      p.x = p.x + i;\n"
       << "    } else {\n"
       << "      p.y = p.y + i;\n"
       << "    }\n"
       << "    i++;\n"
       << "  }\n"
       << "  tracked(S) region scratch = Region.create();\n"
       << "  S:point q = new(scratch) point {x=p.x; y=p.y;};\n"
       << "  q.x++;\n"
       << "  Region.delete(scratch);\n"
       << "  Region.delete(rgn);\n"
       << "}\n";
  }
  return OS.str();
}

/// A well-typed program: the shared prelude plus \p NumFuncs functions.
std::string synthesizeProgram(unsigned NumFuncs) {
  return SynthPrelude + synthesizeFunctions(0, NumFuncs);
}

void BM_CheckSynthetic(benchmark::State &State) {
  const unsigned NumFuncs = static_cast<unsigned>(State.range(0));
  std::string Src = synthesizeProgram(NumFuncs);
  size_t Lines = CEmitter::countCodeLines(Src);
  bool Ok = true;
  for (auto _ : State) {
    VaultCompiler C;
    C.addSource("synth.vlt", Src);
    Ok = C.check() && Ok;
    benchmark::DoNotOptimize(C.diags().errorCount());
  }
  if (!Ok)
    State.SkipWithError("synthetic program failed to check");
  State.SetItemsProcessed(State.iterations() * Lines);
  State.counters["lines"] = static_cast<double>(Lines);
  State.counters["lines_per_sec"] = benchmark::Counter(
      static_cast<double>(State.iterations() * Lines),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CheckSynthetic)->Arg(1)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

/// Worker scaling: the same synthetic program at a fixed size, checked
/// with an increasing worker count. addSource parses inline on the
/// calling thread, but signature elaboration and the flow checks run
/// on the pool, so only the parse is Amdahl-serial here; compare
/// against jobs:1 within the same binary run.
void BM_CheckSyntheticJobs(benchmark::State &State) {
  const unsigned Jobs = static_cast<unsigned>(State.range(0));
  std::string Src = synthesizeProgram(256);
  size_t Lines = CEmitter::countCodeLines(Src);
  bool Ok = true;
  for (auto _ : State) {
    VaultCompiler C;
    C.setJobs(Jobs);
    C.addSource("synth.vlt", Src);
    Ok = C.check() && Ok;
    benchmark::DoNotOptimize(C.diags().errorCount());
  }
  if (!Ok)
    State.SkipWithError("synthetic program failed to check");
  State.SetItemsProcessed(State.iterations() * Lines);
  State.counters["jobs"] = static_cast<double>(Jobs);
  State.counters["lines_per_sec"] = benchmark::Counter(
      static_cast<double>(State.iterations() * Lines),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CheckSyntheticJobs)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Front-end scaling: the same workload split across many queued
/// buffers, so parsing itself runs on the worker pool too (queued
/// buffers parse concurrently at check(); addSource parses inline).
/// The whole pipeline — parse, elaborate, flow check — is parallel.
void BM_CheckQueuedBuffersJobs(benchmark::State &State) {
  const unsigned Jobs = static_cast<unsigned>(State.range(0));
  const unsigned NumFuncs = 256, NumBuffers = 16;
  std::vector<std::string> Buffers;
  size_t Lines = CEmitter::countCodeLines(SynthPrelude);
  for (unsigned B = 0; B != NumBuffers; ++B) {
    Buffers.push_back(synthesizeFunctions(B * NumFuncs / NumBuffers,
                                          (B + 1) * NumFuncs / NumBuffers));
    Lines += CEmitter::countCodeLines(Buffers.back());
  }
  bool Ok = true;
  for (auto _ : State) {
    VaultCompiler C;
    C.setJobs(Jobs);
    C.queueSource("prelude.vlt", SynthPrelude);
    for (unsigned B = 0; B != NumBuffers; ++B)
      C.queueSource("unit" + std::to_string(B) + ".vlt", Buffers[B]);
    Ok = C.check() && Ok;
    benchmark::DoNotOptimize(C.diags().errorCount());
  }
  if (!Ok)
    State.SkipWithError("synthetic program failed to check");
  State.SetItemsProcessed(State.iterations() * Lines);
  State.counters["jobs"] = static_cast<double>(Jobs);
  State.counters["lines_per_sec"] = benchmark::Counter(
      static_cast<double>(State.iterations() * Lines),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CheckQueuedBuffersJobs)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ParseOnlySynthetic(benchmark::State &State) {
  std::string Src = synthesizeProgram(static_cast<unsigned>(State.range(0)));
  size_t Lines = CEmitter::countCodeLines(Src);
  for (auto _ : State) {
    VaultCompiler C;
    C.addSource("synth.vlt", Src);
    benchmark::DoNotOptimize(&C.ast());
  }
  State.SetItemsProcessed(State.iterations() * Lines);
}
BENCHMARK(BM_ParseOnlySynthetic)->Arg(32)->Arg(512);

void BM_CheckFloppyDriver(benchmark::State &State) {
  std::string Src = corpus::load("driver/floppy");
  if (Src.empty()) {
    State.SkipWithError("corpus not found");
    return;
  }
  size_t Lines = CEmitter::countCodeLines(Src);
  for (auto _ : State) {
    VaultCompiler C;
    C.addSource("floppy.vlt", Src);
    benchmark::DoNotOptimize(C.check());
  }
  State.SetItemsProcessed(State.iterations() * Lines);
  State.counters["lines"] = static_cast<double>(Lines);
}
BENCHMARK(BM_CheckFloppyDriver);

/// Whole-corpus batch check at a given job count (0 = hardware
/// concurrency). The multi-file batch case the --jobs flag exists
/// for: many small programs, each parsed serially and flow-checked in
/// parallel.
void BM_CheckWholeCorpus(benchmark::State &State) {
  const unsigned Jobs = static_cast<unsigned>(State.range(0));
  size_t Lines = 0;
  for (auto _ : State) {
    Lines = 0;
    for (const auto &P : corpus::index()) {
      std::string Src = corpus::load(P.Name);
      Lines += CEmitter::countCodeLines(Src);
      VaultCompiler C;
      C.setJobs(Jobs);
      C.addSource(P.Name, Src);
      benchmark::DoNotOptimize(C.check());
    }
  }
  State.SetItemsProcessed(State.iterations() * Lines);
  State.counters["jobs"] = static_cast<double>(Jobs);
  State.counters["programs"] =
      static_cast<double>(corpus::index().size());
}
BENCHMARK(BM_CheckWholeCorpus)->Arg(1)->Arg(0);

} // namespace
