//===- bench_trace.cpp - Observability overhead ---------------------------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// Pins the cost of the observability layer. The contract is that a
// null tracer reduces every instrumentation site to one branch, so
// --check without --trace-json must stay within noise (~2%) of the
// pre-instrumentation baseline; compare BM_CheckNoTracing against
// BM_CheckTracingEnabled to see what turning the sink on costs, and
// BM_TraceRecord/BM_TraceSerialize for the recorder in isolation.
//
//===----------------------------------------------------------------------===//

#include "sema/Checker.h"

#include <benchmark/benchmark.h>

#include <sstream>

using namespace vault;

namespace {

/// N functions with real flow-checking work (mirrors bench_cache's
/// generator: allocate, touch, call the predecessor, delete).
std::string synthProgram(unsigned N) {
  std::ostringstream OS;
  OS << R"(
interface REGION {
  type region;
  tracked(R) region create() [new R];
  void delete(tracked(R) region) [-R];
}
extern module Region : REGION;
struct point { int x; int y; }
)";
  for (unsigned I = 0; I != N; ++I) {
    OS << "void f" << I << "() {\n"
       << "  tracked(K" << I << ") region r = Region.create();\n"
       << "  K" << I << ":point p = new(r) point {x=1; y=2;};\n"
       << "  p.x++;\n";
    if (I)
      OS << "  f" << I - 1 << "();\n";
    OS << "  Region.delete(r);\n}\n";
  }
  return OS.str();
}

/// Baseline: the instrumented pipeline with tracing disabled (null
/// sink). This is the configuration every plain `vaultc --check` runs.
void BM_CheckNoTracing(benchmark::State &State) {
  std::string Src = synthProgram(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    VaultCompiler C;
    C.addSource("bench.vlt", Src);
    benchmark::DoNotOptimize(C.check());
  }
}
BENCHMARK(BM_CheckNoTracing)->Arg(8)->Arg(32)->Arg(128);

/// Same pipeline with a live tracer: spans are recorded (but not yet
/// serialized).
void BM_CheckTracingEnabled(benchmark::State &State) {
  std::string Src = synthProgram(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    Tracer T;
    VaultCompiler C;
    C.setTracer(&T);
    C.addSource("bench.vlt", Src);
    benchmark::DoNotOptimize(C.check());
    benchmark::DoNotOptimize(T.eventCount());
  }
}
BENCHMARK(BM_CheckTracingEnabled)->Arg(8)->Arg(32)->Arg(128);

/// The recorder alone: one complete() per iteration, single thread.
void BM_TraceRecord(benchmark::State &State) {
  Tracer T;
  uint64_t I = 0;
  for (auto _ : State) {
    T.complete("span", I, I + 1);
    ++I;
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()));
}
BENCHMARK(BM_TraceRecord);

/// Serialization cost for a trace of State.range(0) events.
void BM_TraceSerialize(benchmark::State &State) {
  Tracer T;
  for (int64_t I = 0; I < State.range(0); ++I)
    T.complete("span", static_cast<uint64_t>(I), static_cast<uint64_t>(I + 1),
               {{"i", std::to_string(I)}});
  for (auto _ : State)
    benchmark::DoNotOptimize(T.json());
}
BENCHMARK(BM_TraceSerialize)->Arg(1000)->Arg(10000);

} // namespace
