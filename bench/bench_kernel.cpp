//===- bench_kernel.cpp - IRP throughput vs stack depth (B4) --------------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// Driver-stack costs in the kernel simulator: IRP round trips through
// stacks of increasing depth (each level adds a dispatch + a stack
// location copy), the pending-queue path, and the Fig. 7 completion-
// routine round trip.
//
//===----------------------------------------------------------------------===//

#include "driver/FloppyDriver.h"
#include "driver/PassThroughDriver.h"

#include <benchmark/benchmark.h>

using namespace vault::kern;
using namespace vault::drv;

namespace {

/// Builds bus <- floppy <- (Depth-2 filters); returns the top device.
DeviceObject *buildStack(Kernel &K, unsigned Depth) {
  DeviceObject *Floppy = nullptr;
  DeviceObject *Bus = K.createDevice("bus");
  makeBusDriver(K, Bus);
  Floppy = K.createDevice("floppy");
  makeFloppyDriver(K, Floppy);
  K.attach(Floppy, Bus);
  auto *Ext = Floppy->extension<FloppyExtension>();
  Ext->Started = true;
  Ext->Hw.motorOn();
  DeviceObject *Top = Floppy;
  for (unsigned I = 2; I < Depth; ++I) {
    DeviceObject *Filter = K.createDevice("filter" + std::to_string(I));
    makePassThroughDriver(K, Filter);
    K.attach(Filter, Top);
    Top = Filter;
  }
  return Top;
}

void BM_ReadThroughStack(benchmark::State &State) {
  Kernel K;
  DeviceObject *Top = buildStack(K, static_cast<unsigned>(State.range(0)));
  uint64_t Sector = 0;
  for (auto _ : State) {
    Irp *I = K.allocateIrp(IrpMajor::Read, Top, 512);
    I->currentLocation(nullptr).Offset = 512 * (Sector++ % 64);
    I->currentLocation(nullptr).Length = 512;
    NtStatus St = K.sendRequest(Top, I);
    if (St != NtStatus::Success) {
      State.SkipWithError("read failed");
      return;
    }
  }
  State.SetItemsProcessed(State.iterations());
  State.counters["stack_depth"] = static_cast<double>(State.range(0));
  State.counters["irps_per_sec"] = benchmark::Counter(
      static_cast<double>(State.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ReadThroughStack)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_WriteThroughStack(benchmark::State &State) {
  Kernel K;
  DeviceObject *Top = buildStack(K, 4);
  uint64_t Sector = 0;
  for (auto _ : State) {
    Irp *I = K.allocateIrp(IrpMajor::Write, Top, 512);
    I->currentLocation(nullptr).Offset = 512 * (Sector++ % 64);
    I->currentLocation(nullptr).Length = 512;
    benchmark::DoNotOptimize(K.sendRequest(Top, I));
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_WriteThroughStack);

void BM_PnpFig7RoundTrip(benchmark::State &State) {
  // The regain-ownership idiom: completion routine + event wait.
  Kernel K;
  DeviceObject *Top = buildStack(K, 4);
  for (auto _ : State) {
    Irp *I = K.allocateIrp(IrpMajor::Pnp, Top);
    I->currentLocation(nullptr).Minor = PnpMinor::StartDevice;
    benchmark::DoNotOptimize(K.sendRequest(Top, I));
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_PnpFig7RoundTrip);

void BM_QueueBurst(benchmark::State &State) {
  // N reads land before the worker drains: exercises pend + queue +
  // deferred completion.
  Kernel K;
  DeviceObject *Floppy = nullptr;
  DeviceObject *Top = buildFloppyStack(K, &Floppy);
  auto *Ext = Floppy->extension<FloppyExtension>();
  Ext->Started = true;
  Ext->Hw.motorOn();
  const unsigned Burst = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    std::vector<Irp *> Batch;
    for (unsigned I = 0; I != Burst; ++I) {
      Irp *R = K.allocateIrp(IrpMajor::Read, Top, 512);
      R->currentLocation(nullptr).Offset = 512 * (I % 64);
      R->currentLocation(nullptr).Length = 512;
      // Dispatch without draining the queue yet.
      K.callDriver(Top, R);
      Batch.push_back(R);
    }
    K.runAllWork();
    for (Irp *R : Batch)
      if (!R->isCompleted()) {
        State.SkipWithError("IRP not completed after drain");
        return;
      }
  }
  State.SetItemsProcessed(State.iterations() * Burst);
}
BENCHMARK(BM_QueueBurst)->Arg(1)->Arg(16)->Arg(128);

void BM_OracleOverhead(benchmark::State &State) {
  // Cost of the dynamic ownership oracle itself: buffer access through
  // the checked accessor.
  Kernel K;
  DeviceObject *Dev = K.createDevice("dev");
  Irp *I = K.allocateIrp(IrpMajor::Read, Dev, 4096);
  for (auto _ : State) {
    benchmark::DoNotOptimize(I->buffer(nullptr).data());
  }
}
BENCHMARK(BM_OracleOverhead);

} // namespace
