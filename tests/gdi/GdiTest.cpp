//===- GdiTest.cpp - Graphics substrate (paper §6's next domain) ----------===//

#include "gdi/Gdi.h"

#include <gtest/gtest.h>

using namespace vault::gdi;

namespace {

TEST(Gdi, PaintSessionHappyPath) {
  GdiWorld W;
  auto Win = W.createWindow("w");
  GdiWorld::Handle Dc = 0;
  ASSERT_EQ(W.beginPaint(Win, Dc), GdiError::Ok);
  EXPECT_TRUE(W.isDcLive(Dc));
  EXPECT_EQ(W.moveTo(Dc, 0, 0), GdiError::Ok);
  EXPECT_EQ(W.lineTo(Dc, 5, 5), GdiError::Ok);
  EXPECT_EQ(W.endPaint(Win, Dc), GdiError::Ok);
  EXPECT_FALSE(W.isDcLive(Dc));
  EXPECT_EQ(W.violationCount(), 0u);
  ASSERT_EQ(W.displayList().size(), 1u);
  EXPECT_EQ(W.displayList()[0].X1, 5);
  EXPECT_EQ(W.displayList()[0].Pen, 0u) << "stock pen";
}

TEST(Gdi, PenSelectionRecordedInDrawing) {
  GdiWorld W;
  auto Win = W.createWindow("w");
  GdiWorld::Handle Dc = 0;
  W.beginPaint(Win, Dc);
  auto Pen = W.createPen(3, 0xFF0000);
  GdiWorld::Handle Old = ~0ull;
  ASSERT_EQ(W.selectPen(Dc, Pen, Old), GdiError::Ok);
  EXPECT_EQ(Old, 0u) << "previously the stock pen";
  W.lineTo(Dc, 1, 1);
  ASSERT_EQ(W.restorePen(Dc, Old), GdiError::Ok);
  W.lineTo(Dc, 2, 2);
  EXPECT_EQ(W.endPaint(Win, Dc), GdiError::Ok);
  EXPECT_EQ(W.deletePen(Pen), GdiError::Ok);
  ASSERT_EQ(W.displayList().size(), 2u);
  EXPECT_EQ(W.displayList()[0].Pen, Pen);
  EXPECT_EQ(W.displayList()[1].Pen, 0u);
  EXPECT_EQ(W.violationCount(), 0u);
}

TEST(Gdi, EndPaintWithCustomPenIsViolation) {
  GdiWorld W;
  auto Win = W.createWindow("w");
  GdiWorld::Handle Dc = 0, Old = 0;
  W.beginPaint(Win, Dc);
  auto Pen = W.createPen(1, 1);
  W.selectPen(Dc, Pen, Old);
  EXPECT_EQ(W.endPaint(Win, Dc), GdiError::PenStillCustom);
  EXPECT_EQ(W.violationCount(), 1u);
}

TEST(Gdi, DoubleEndPaintIsViolation) {
  GdiWorld W;
  auto Win = W.createWindow("w");
  GdiWorld::Handle Dc = 0;
  W.beginPaint(Win, Dc);
  W.endPaint(Win, Dc);
  EXPECT_EQ(W.endPaint(Win, Dc), GdiError::WrongState);
  EXPECT_EQ(W.violationCount(), 1u);
}

TEST(Gdi, DrawOnDeadDcIsViolation) {
  GdiWorld W;
  auto Win = W.createWindow("w");
  GdiWorld::Handle Dc = 0;
  W.beginPaint(Win, Dc);
  W.endPaint(Win, Dc);
  EXPECT_EQ(W.lineTo(Dc, 1, 1), GdiError::BadHandle);
  EXPECT_EQ(W.violationCount(), 1u);
}

TEST(Gdi, DeleteSelectedPenIsViolation) {
  GdiWorld W;
  auto Win = W.createWindow("w");
  GdiWorld::Handle Dc = 0, Old = 0;
  W.beginPaint(Win, Dc);
  auto Pen = W.createPen(1, 1);
  W.selectPen(Dc, Pen, Old);
  EXPECT_EQ(W.deletePen(Pen), GdiError::WrongState);
  EXPECT_EQ(W.violationCount(), 1u);
  W.restorePen(Dc, Old);
  EXPECT_EQ(W.deletePen(Pen), GdiError::Ok);
}

TEST(Gdi, RestoreWithoutSelectIsViolation) {
  GdiWorld W;
  auto Win = W.createWindow("w");
  GdiWorld::Handle Dc = 0;
  W.beginPaint(Win, Dc);
  EXPECT_EQ(W.restorePen(Dc, 0), GdiError::NotSelected);
  EXPECT_EQ(W.violationCount(), 1u);
}

TEST(Gdi, LeakReporting) {
  GdiWorld W;
  auto Win = W.createWindow("w");
  GdiWorld::Handle A = 0, B = 0;
  W.beginPaint(Win, A);
  W.beginPaint(Win, B);
  W.endPaint(Win, A);
  auto Leaked = W.leakedDcs();
  ASSERT_EQ(Leaked.size(), 1u);
  EXPECT_EQ(Leaked[0], B);
  W.createPen(1, 1);
  EXPECT_EQ(W.livePenCount(), 1u);
}

TEST(Gdi, NestedSelections) {
  GdiWorld W;
  auto Win = W.createWindow("w");
  GdiWorld::Handle Dc = 0;
  W.beginPaint(Win, Dc);
  auto P1 = W.createPen(1, 1);
  auto P2 = W.createPen(2, 2);
  GdiWorld::Handle Old1 = 0, Old2 = 0;
  W.selectPen(Dc, P1, Old1);
  W.selectPen(Dc, P2, Old2);
  EXPECT_EQ(Old2, P1);
  W.lineTo(Dc, 1, 1);
  W.restorePen(Dc, Old2); // Back to P1.
  W.restorePen(Dc, Old1); // Back to stock.
  EXPECT_EQ(W.endPaint(Win, Dc), GdiError::Ok);
  EXPECT_EQ(W.violationCount(), 0u);
}

} // namespace
