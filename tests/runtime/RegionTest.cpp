//===- RegionTest.cpp - Region allocator runtime --------------------------===//

#include "runtime/Region.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace vault::rt;

namespace {

TEST(Region, BasicAllocation) {
  Region R;
  void *A = R.allocate(16);
  void *B = R.allocate(16);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_NE(A, B);
  EXPECT_EQ(R.numAllocations(), 2u);
  EXPECT_EQ(R.bytesAllocated(), 32u);
}

TEST(Region, Alignment) {
  Region R;
  R.allocate(1);
  void *P = R.allocate(8, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 64, 0u);
}

TEST(Region, ZeroSizedAllocationsAreDistinct) {
  Region R;
  void *A = R.allocate(0);
  void *B = R.allocate(0);
  EXPECT_NE(A, B);
}

TEST(Region, LargeAllocationGetsOwnChunk) {
  Region R(1024);
  void *P = R.allocate(1 << 20);
  ASSERT_NE(P, nullptr);
  std::memset(P, 0xAB, 1 << 20); // Must be fully usable.
  EXPECT_GE(R.numChunks(), 1u);
}

TEST(Region, ManySmallAllocationsSpanChunks) {
  Region R(1024);
  for (int I = 0; I != 1000; ++I)
    ASSERT_NE(R.allocate(64), nullptr);
  EXPECT_GT(R.numChunks(), 1u);
}

TEST(Region, CreateTyped) {
  struct Point {
    int X, Y;
  };
  Region R;
  Point *P = R.create<Point>(3, 4);
  EXPECT_EQ(P->X, 3);
  EXPECT_EQ(P->Y, 4);
}

TEST(Region, ResetReleasesEverything) {
  Region R;
  R.allocate(128);
  R.reset();
  EXPECT_EQ(R.bytesAllocated(), 0u);
  EXPECT_EQ(R.numAllocations(), 0u);
  EXPECT_NE(R.allocate(8), nullptr);
}

TEST(RegionManager, LifecycleAndHandles) {
  RegionManager M;
  auto H = M.create();
  EXPECT_TRUE(M.isLive(H));
  EXPECT_NE(M.allocate(H, 32), nullptr);
  EXPECT_TRUE(M.destroy(H));
  EXPECT_FALSE(M.isLive(H));
  EXPECT_EQ(M.violationCount(), 0u);
}

TEST(RegionManager, UseAfterDeleteDetected) {
  RegionManager M;
  auto H = M.create();
  M.destroy(H);
  EXPECT_EQ(M.allocate(H, 8), nullptr);
  EXPECT_EQ(M.violationCount(), 1u);
}

TEST(RegionManager, DoubleDeleteDetected) {
  RegionManager M;
  auto H = M.create();
  M.destroy(H);
  EXPECT_FALSE(M.destroy(H));
  EXPECT_EQ(M.violationCount(), 1u);
}

TEST(RegionManager, BogusHandleDetected) {
  RegionManager M;
  EXPECT_FALSE(M.isLive(0));
  EXPECT_FALSE(M.isLive(42));
  EXPECT_EQ(M.allocate(42, 8), nullptr);
  EXPECT_EQ(M.violationCount(), 1u);
}

TEST(RegionManager, LeakReport) {
  RegionManager M;
  auto A = M.create();
  auto B = M.create();
  auto CH = M.create();
  M.destroy(B);
  auto Leaked = M.leakedRegions();
  ASSERT_EQ(Leaked.size(), 2u);
  EXPECT_EQ(Leaked[0], A);
  EXPECT_EQ(Leaked[1], CH);
  EXPECT_EQ(M.liveCount(), 2u);
}

} // namespace
