//===- TestUtil.h - Shared test helpers -------------------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#ifndef VAULT_TESTS_TESTUTIL_H
#define VAULT_TESTS_TESTUTIL_H

#include "sema/Checker.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace vault::test {

/// Region + point prelude used throughout the sema tests (Fig. 1).
inline const char *regionPrelude() {
  return R"(
interface REGION {
  type region;
  tracked(R) region create() [new R];
  void delete(tracked(R) region) [-R];
}
extern module Region : REGION;
struct point { int x; int y; }
void print(string s);
void print_int(int n);
void expect(bool b);
)";
}

/// Socket prelude (Fig. 3 + the fallible bind of §2.3).
inline const char *socketPrelude() {
  return R"(
type sock;
variant domain [ 'UNIX | 'INET ];
variant comm_style [ 'STREAM | 'DGRAM ];
struct sockaddr { int port; }
tracked(@raw) sock socket(domain, comm_style, int);
void bind(tracked(S) sock, sockaddr) [S@raw->named];
void listen(tracked(S) sock, int) [S@named->listening];
tracked(N) sock accept(tracked(S) sock, sockaddr) [S@listening, new N@ready];
void receive(tracked(S) sock, byte[]) [S@ready];
void close(tracked(S) sock) [-S];
variant status<key K> [ 'Ok {K@named} | 'Error(int) {K@raw} ];
tracked status<S> bind2(tracked(S) sock, sockaddr) [-S@raw];
)";
}

/// Kernel/driver prelude (§4): IRPs, events, completion routines,
/// IRQL, spin locks, queues.
inline const char *kernelPrelude() {
  return R"(
stateset IRQ_LEVEL = [ PASSIVE_LEVEL < APC_LEVEL < DISPATCH_LEVEL < DIRQL ];
key IRQL @ IRQ_LEVEL;
type NTSTATUS = int;
type DEVICE_OBJECT;
type KIRQL<state S>;
type paged<type T> = (IRQL @ (level <= APC_LEVEL)):T;
type IRP;
type DSTATUS<key I>;
DSTATUS<I> IoCompleteRequest(tracked(I) IRP, NTSTATUS) [-I];
DSTATUS<I> IoCallDriver(DEVICE_OBJECT, tracked(I) IRP) [-I];
DSTATUS<I> IoMarkIrpPending(tracked(I) IRP) [I];
int IrpLength(tracked(I) IRP) [I];
void IrpSetInformation(tracked(I) IRP, int) [I];
type KEVENT<key K>;
KEVENT<K> KeInitializeEvent(tracked(K) IRP) [K];
void KeSignalEvent(KEVENT<K>) [-K];
void KeWaitForEvent(KEVENT<K>) [+K];
variant COMPLETION_RESULT<key I> [ 'MoreProcessingRequired | 'Finished(NTSTATUS) {I} ];
type COMPLETION_ROUTINE<key K> =
  tracked COMPLETION_RESULT<K> Routine(DEVICE_OBJECT, tracked(K) IRP) [-K];
void IoSetCompletionRoutine(tracked(I) IRP, COMPLETION_ROUTINE<I>) [I];
type LOCK<key K>;
KIRQL<level> KeAcquireSpinLock(LOCK<Q>)
  [+Q, IRQL @ (level <= DISPATCH_LEVEL) -> DISPATCH_LEVEL];
void KeReleaseSpinLock(LOCK<Q>, KIRQL<level>)
  [-Q, IRQL @ DISPATCH_LEVEL -> level];
type QUEUE;
void Enqueue(Q:QUEUE, tracked IRP) [Q];
variant popt [ 'NoIrp | 'GotIrp(tracked IRP) ];
tracked popt Dequeue(Q:QUEUE) [Q];
int KeSetPriorityThread(int priority) [IRQL @ PASSIVE_LEVEL];
int KeReleaseSemaphore(int count) [IRQL @ (level <= DISPATCH_LEVEL)];
)";
}

/// Mutex + guarded-cell prelude (the concurrency protocol domain):
/// the lock-discipline automaton unlocked->locked->unlocked->gone and
/// a cell whose key is guarded by the mutex key in state 'locked'.
inline const char *mutexPrelude() {
  return R"(
interface MUTEX {
  type mutex;
  struct cell { int val; }
  tracked(@unlocked) mutex mutex_create();
  void mutex_acquire(tracked(M) mutex) [M@unlocked->locked];
  void mutex_release(tracked(M) mutex) [M@locked->unlocked];
  void mutex_destroy(tracked(M) mutex) [-M@unlocked];
  guarded<M> tracked cell cell_new(tracked(M) mutex, int val) [M@locked];
}
void print(string s);
void print_int(int n);
void expect(bool b);
)";
}

/// Parses and checks \p Source (prefixed by \p Prelude).
inline std::unique_ptr<VaultCompiler> check(const std::string &Source,
                                            const std::string &Prelude = "") {
  auto C = std::make_unique<VaultCompiler>();
  C->addSource("test.vlt", Prelude + Source);
  C->check();
  return C;
}

#define EXPECT_ACCEPTED(C)                                                     \
  EXPECT_FALSE((C)->diags().hasErrors()) << (C)->diags().render()

#define EXPECT_REJECTED_WITH(C, Id)                                            \
  do {                                                                         \
    EXPECT_TRUE((C)->diags().hasErrors()) << "program unexpectedly accepted";  \
    EXPECT_TRUE((C)->diags().has(Id))                                          \
        << "missing diagnostic " << vault::diagName(Id) << "\n"                \
        << (C)->diags().render();                                              \
  } while (0)

} // namespace vault::test

#endif // VAULT_TESTS_TESTUTIL_H
