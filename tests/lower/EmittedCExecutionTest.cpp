//===- EmittedCExecutionTest.cpp - Run the lowered C ----------------------===//
//
// The strongest form of the erasure claim (E10): the C emitted from a
// checked Vault program, linked against a 30-line runtime stub,
// *executes* and produces the same observable output as the reference
// interpreter — with no protocol machinery anywhere in the binary.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "interp/Interp.h"
#include "lower/CEmitter.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace vault;
using namespace vault::test;

namespace {

const char *RuntimeStub = R"(
#include <stdint.h>
#include <stdio.h>
#include <stdlib.h>

static uint64_t next_region = 1;
uint64_t Region_create(void) { return next_region++; }
void Region_delete(uint64_t r) { (void)r; }
void *vault_region_alloc(uint64_t region, size_t size) {
  (void)region;
  return calloc(1, size);
}
void print(const char *s) { printf("%s\n", s); }
void print_int(int32_t n) { printf("%d\n", n); }
void expect(_Bool b) {
  if (!b) {
    fprintf(stderr, "expect failed\n");
    exit(3);
  }
}
)";

/// Lowers \p Src, compiles it with the stub, runs it, and returns the
/// stdout text (empty optional on any failure).
std::optional<std::string> emitAndRun(const std::string &Src,
                                      const std::string &TestName) {
  auto C = check(Src, regionPrelude());
  if (C->diags().hasErrors()) {
    ADD_FAILURE() << C->diags().render();
    return std::nullopt;
  }
  CEmitter E(*C);
  std::string CSrc = E.emitProgram();

  std::string Base = ::testing::TempDir() + "/vault_exec_" + TestName;
  {
    std::ofstream P(Base + ".c");
    P << CSrc;
    std::ofstream S(Base + "_rt.c");
    S << RuntimeStub;
  }
  std::string Bin = Base + ".bin";
  std::string Cmd = "cc -std=c11 -w " + Base + ".c " + Base + "_rt.c -o " +
                    Bin + " 2>" + Base + ".log";
  if (std::system(Cmd.c_str()) != 0) {
    std::ifstream Log(Base + ".log");
    std::string Err((std::istreambuf_iterator<char>(Log)),
                    std::istreambuf_iterator<char>());
    ADD_FAILURE() << "emitted C failed to build:\n" << Err << "\n" << CSrc;
    return std::nullopt;
  }
  std::string OutFile = Base + ".out";
  if (std::system((Bin + " >" + OutFile).c_str()) != 0) {
    ADD_FAILURE() << "emitted binary exited non-zero";
    return std::nullopt;
  }
  std::ifstream Out(OutFile);
  std::string Text((std::istreambuf_iterator<char>(Out)),
                   std::istreambuf_iterator<char>());
  std::remove((Base + ".c").c_str());
  std::remove((Base + "_rt.c").c_str());
  std::remove(Bin.c_str());
  std::remove(OutFile.c_str());
  std::remove((Base + ".log").c_str());
  return Text;
}

/// The interpreter's view of the same program.
std::string interpOutput(const std::string &Src) {
  auto C = check(Src, regionPrelude());
  interp::Interp I(*C);
  I.run("main");
  std::string Out;
  for (const std::string &L : I.output())
    Out += L + "\n";
  return Out;
}

TEST(EmittedCExecution, RegionArithmeticMatchesInterpreter) {
  const char *Src = R"(
void main() {
  tracked(R) region rgn = Region.create();
  R:point acc = new(rgn) point {x=0; y=0;};
  int i = 0;
  while (i < 10) {
    acc.x = acc.x + i;
    acc.y = acc.y + i * i;
    i++;
  }
  print_int(acc.x);
  print_int(acc.y);
  Region.delete(rgn);
}
)";
  auto CRun = emitAndRun(Src, "region_arith");
  ASSERT_TRUE(CRun.has_value());
  EXPECT_EQ(*CRun, "45\n285\n");
  EXPECT_EQ(*CRun, interpOutput(Src)) << "C and interpreter agree";
}

TEST(EmittedCExecution, VariantsAndSwitch) {
  const char *Src = R"(
variant shape [ 'Circle(int) | 'Rect(int, int) ];
int area(shape s) {
  switch (s) {
    case 'Circle(r):
      return 3 * r * r;
    case 'Rect(w, h):
      return w * h;
  }
}
void main() {
  print_int(area('Circle(4)));
  print_int(area('Rect(6, 7)));
}
)";
  auto CRun = emitAndRun(Src, "variants");
  ASSERT_TRUE(CRun.has_value());
  EXPECT_EQ(*CRun, "48\n42\n");
  EXPECT_EQ(*CRun, interpOutput(Src));
}

TEST(EmittedCExecution, ControlFlowParity) {
  const char *Src = R"(
int collatz(int n) {
  int steps = 0;
  while (n != 1) {
    if (n % 2 == 0) {
      n = n / 2;
    } else {
      n = 3 * n + 1;
    }
    steps++;
  }
  return steps;
}
void main() {
  print_int(collatz(27));
  expect(collatz(1) == 0);
}
)";
  auto CRun = emitAndRun(Src, "collatz");
  ASSERT_TRUE(CRun.has_value());
  EXPECT_EQ(*CRun, "111\n");
  EXPECT_EQ(*CRun, interpOutput(Src));
}

TEST(EmittedCExecution, TrackedHeapObjects) {
  const char *Src = R"(
void main() {
  tracked(K) point p = new tracked point {x=21; y=2;};
  print_int(p.x * p.y);
  free(p);
}
)";
  auto CRun = emitAndRun(Src, "heap");
  ASSERT_TRUE(CRun.has_value());
  EXPECT_EQ(*CRun, "42\n");
  EXPECT_EQ(*CRun, interpOutput(Src));
}

} // namespace
