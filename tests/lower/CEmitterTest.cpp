//===- CEmitterTest.cpp - Vault-to-C lowering / key erasure ---------------===//

#include "TestUtil.h"

#include "corpus/Corpus.h"
#include "lower/CEmitter.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace vault;
using namespace vault::test;

namespace {

std::string emit(const std::string &Src, const std::string &Prelude = "") {
  auto C = check(Src, Prelude);
  EXPECT_FALSE(C->diags().hasErrors()) << C->diags().render();
  CEmitter E(*C);
  return E.emitProgram();
}

TEST(CEmitter, ErasesKeysAndGuards) {
  std::string CSrc = emit(R"(
void okay() {
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {x=1; y=2;};
  pt.x++;
  Region.delete(rgn);
}
)",
                          regionPrelude());
  // No trace of the protocol machinery survives lowering.
  EXPECT_EQ(CSrc.find("tracked"), std::string::npos);
  EXPECT_EQ(CSrc.find("held-key"), std::string::npos);
  EXPECT_EQ(CSrc.find("[-R]"), std::string::npos);
  EXPECT_EQ(CSrc.find("@raw"), std::string::npos);
  // The functional content survives.
  EXPECT_NE(CSrc.find("vault_region_alloc"), std::string::npos);
  EXPECT_NE(CSrc.find("pt->x++"), std::string::npos);
}

TEST(CEmitter, VariantsBecomeTaggedUnions) {
  std::string CSrc = emit(R"(
variant opt [ 'None | 'Some(int) ];
int get(opt o, int dflt) {
  switch (o) {
    case 'None:
      return dflt;
    case 'Some(v):
      return v;
  }
}
)");
  EXPECT_NE(CSrc.find("enum opt_tag"), std::string::npos);
  EXPECT_NE(CSrc.find("struct opt"), std::string::npos);
  EXPECT_NE(CSrc.find("opt_None"), std::string::npos);
  EXPECT_NE(CSrc.find("switch"), std::string::npos);
}

TEST(CEmitter, EnumOnlyVariantsLowerToEnums) {
  std::string CSrc = emit("variant dir [ 'Left | 'Right ];\n"
                          "dir flip(dir d) { switch (d) { case 'Left: return "
                          "'Right; case 'Right: return 'Left; } }");
  EXPECT_NE(CSrc.find("enum dir"), std::string::npos);
  EXPECT_EQ(CSrc.find("union"), std::string::npos);
}

TEST(CEmitter, KeyedCtorLosesItsBraces) {
  std::string CSrc = emit(R"(
type FILE;
tracked(@open) FILE fopen(string path);
void fclose(tracked(F) FILE) [-F];
variant opt_key<key K> [ 'NoKey | 'SomeKey {K} ];
void foo(tracked(F) FILE f) [-F] {
  tracked opt_key<F> flag = 'SomeKey{F};
  switch (flag) {
    case 'NoKey:
    case 'SomeKey:
      fclose(f);
  }
}
)");
  // The key braces have no run-time counterpart.
  EXPECT_EQ(CSrc.find("{F}"), std::string::npos);
  EXPECT_NE(CSrc.find("opt_key_SomeKey"), std::string::npos);
}

TEST(CEmitter, CountCodeLines) {
  EXPECT_EQ(CEmitter::countCodeLines(""), 0u);
  EXPECT_EQ(CEmitter::countCodeLines("int x;\n// comment\n\nint y;\n"), 2u);
  EXPECT_EQ(CEmitter::countCodeLines("  // indented comment\n  code;\n"), 1u);
}

TEST(CEmitter, StatesetAndKeysAreCompileTimeOnly) {
  std::string CSrc = emit(R"(
stateset L = [ a < b ];
key G @ L;
void f() [G @ a] {}
)");
  EXPECT_NE(CSrc.find("compile-time only"), std::string::npos);
}

class CorpusCompiles : public ::testing::TestWithParam<corpus::ProgramInfo> {};

TEST_P(CorpusCompiles, EmittedCIsValidC) {
  const auto &P = GetParam();
  if (!P.ExpectAccept)
    GTEST_SKIP() << "only accepted programs are lowered";
  auto C = corpus::check(P.Name);
  ASSERT_FALSE(C->diags().hasErrors());
  CEmitter E(*C);
  std::string CSrc = E.emitProgram();
  ASSERT_FALSE(CSrc.empty());

  // Compile the generated C with the system compiler (syntax only).
  std::string Base = ::testing::TempDir() + "/vault_emit_" +
                     std::to_string(::getpid()) + "_" +
                     std::to_string(reinterpret_cast<uintptr_t>(&P) & 0xffff);
  std::string CPath = Base + ".c";
  std::ofstream Out(CPath);
  Out << CSrc;
  Out.close();
  std::string Cmd = "cc -std=c11 -fsyntax-only " + CPath + " 2>" + Base + ".log";
  int Rc = std::system(Cmd.c_str());
  std::ifstream Log(Base + ".log");
  std::string Err((std::istreambuf_iterator<char>(Log)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(Rc, 0) << "emitted C does not compile:\n" << Err << "\n" << CSrc;
  std::remove(CPath.c_str());
  std::remove((Base + ".log").c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CorpusCompiles, ::testing::ValuesIn(corpus::index()),
    [](const ::testing::TestParamInfo<corpus::ProgramInfo> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

} // namespace
