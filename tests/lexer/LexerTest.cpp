//===- LexerTest.cpp ------------------------------------------------------===//

#include "lexer/Lexer.h"

#include <gtest/gtest.h>

using namespace vault;

namespace {

std::vector<Token> lexAll(const std::string &Text, unsigned *Errors = nullptr) {
  static SourceManager SM;
  static DiagnosticEngine Diags(SM);
  Diags.clear();
  uint32_t Id = SM.addBuffer("lex.vlt", Text);
  Lexer L(SM, Id, Diags);
  auto Toks = L.lexAll();
  if (Errors)
    *Errors = Diags.errorCount();
  return Toks;
}

std::vector<TokKind> kindsOf(const std::string &Text) {
  std::vector<TokKind> Out;
  for (const Token &T : lexAll(Text))
    Out.push_back(T.Kind);
  return Out;
}

TEST(Lexer, Empty) {
  auto Toks = lexAll("");
  ASSERT_EQ(Toks.size(), 1u);
  EXPECT_TRUE(Toks[0].is(TokKind::Eof));
}

TEST(Lexer, Keywords) {
  auto Ks = kindsOf("tracked key stateset variant interface module free");
  std::vector<TokKind> Want = {
      TokKind::KwTracked, TokKind::KwKey,    TokKind::KwStateset,
      TokKind::KwVariant, TokKind::KwInterface, TokKind::KwModule,
      TokKind::KwFree,    TokKind::Eof};
  EXPECT_EQ(Ks, Want);
}

TEST(Lexer, TickIdentifier) {
  auto Toks = lexAll("'SomeKey 'Nil");
  ASSERT_GE(Toks.size(), 3u);
  EXPECT_TRUE(Toks[0].is(TokKind::TickIdentifier));
  EXPECT_EQ(Toks[0].Text, "SomeKey");
  EXPECT_EQ(Toks[1].Text, "Nil");
}

TEST(Lexer, Underscore) {
  auto Toks = lexAll("_ _x");
  EXPECT_TRUE(Toks[0].is(TokKind::Underscore));
  EXPECT_TRUE(Toks[1].is(TokKind::Identifier));
  EXPECT_EQ(Toks[1].Text, "_x");
}

TEST(Lexer, Numbers) {
  auto Toks = lexAll("0 42 0x1F");
  EXPECT_EQ(Toks[0].IntValue, 0);
  EXPECT_EQ(Toks[1].IntValue, 42);
  EXPECT_EQ(Toks[2].IntValue, 31);
}

TEST(Lexer, BadNumber) {
  unsigned Errors = 0;
  lexAll("12abc", &Errors);
  EXPECT_EQ(Errors, 1u);
}

TEST(Lexer, StringEscapes) {
  auto Toks = lexAll(R"("a\nb\"c")");
  ASSERT_TRUE(Toks[0].is(TokKind::StringLiteral));
  EXPECT_EQ(Toks[0].Text, "a\nb\"c");
}

TEST(Lexer, UnterminatedString) {
  unsigned Errors = 0;
  lexAll("\"oops", &Errors);
  EXPECT_EQ(Errors, 1u);
}

TEST(Lexer, ArrowVsMinus) {
  auto Ks = kindsOf("a->b a-b a--");
  std::vector<TokKind> Want = {TokKind::Identifier, TokKind::Arrow,
                               TokKind::Identifier, TokKind::Identifier,
                               TokKind::Minus,      TokKind::Identifier,
                               TokKind::Identifier, TokKind::MinusMinus,
                               TokKind::Eof};
  EXPECT_EQ(Ks, Want);
}

TEST(Lexer, ComparisonOperators) {
  auto Ks = kindsOf("< <= > >= == != =");
  std::vector<TokKind> Want = {
      TokKind::Less,         TokKind::LessEqual, TokKind::Greater,
      TokKind::GreaterEqual, TokKind::EqualEqual, TokKind::ExclaimEqual,
      TokKind::Equal,        TokKind::Eof};
  EXPECT_EQ(Ks, Want);
}

TEST(Lexer, Comments) {
  auto Ks = kindsOf("a // line comment\nb /* block\ncomment */ c");
  std::vector<TokKind> Want = {TokKind::Identifier, TokKind::Identifier,
                               TokKind::Identifier, TokKind::Eof};
  EXPECT_EQ(Ks, Want);
}

TEST(Lexer, UnterminatedBlockComment) {
  unsigned Errors = 0;
  lexAll("a /* never closed", &Errors);
  EXPECT_EQ(Errors, 1u);
}

TEST(Lexer, EffectClauseTokens) {
  auto Ks = kindsOf("[K@a->b, -F, +G, new H@s]");
  std::vector<TokKind> Want = {
      TokKind::LBracket, TokKind::Identifier, TokKind::At,
      TokKind::Identifier, TokKind::Arrow,    TokKind::Identifier,
      TokKind::Comma,    TokKind::Minus,      TokKind::Identifier,
      TokKind::Comma,    TokKind::Plus,       TokKind::Identifier,
      TokKind::Comma,    TokKind::KwNew,      TokKind::Identifier,
      TokKind::At,       TokKind::Identifier, TokKind::RBracket,
      TokKind::Eof};
  EXPECT_EQ(Ks, Want);
}

TEST(Lexer, UnknownCharacterRecovers) {
  unsigned Errors = 0;
  auto Toks = lexAll("a $ b", &Errors);
  EXPECT_EQ(Errors, 1u);
  ASSERT_EQ(Toks.size(), 3u); // a, b, eof — '$' skipped.
}

TEST(Lexer, Locations) {
  auto Toks = lexAll("ab\ncd");
  EXPECT_EQ(Toks[0].Loc.Offset, 0u);
  EXPECT_EQ(Toks[1].Loc.Offset, 3u);
}

TEST(Lexer, PositionSaveRestore) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  uint32_t Id = SM.addBuffer("t.vlt", "a b c");
  Lexer L(SM, Id, Diags);
  L.lex();
  size_t Pos = L.position();
  Token B1 = L.lex();
  L.setPosition(Pos);
  Token B2 = L.lex();
  EXPECT_EQ(B1.Text, B2.Text);
}

} // namespace

TEST(Lexer, CrlfTokensMatchLfLineAndColumn) {
  // The same program in LF and CRLF encodings lexes to the same token
  // stream, with every token at the same line and column. (Byte
  // offsets differ; diagnostics render line/column, so those are what
  // must agree.)
  static SourceManager SM;
  static DiagnosticEngine Diags(SM);
  std::string Lf = "key L;\nvoid f() {\n  int x = 1;\n}\n";
  std::string Crlf;
  for (char C : Lf)
    Crlf += C == '\n' ? std::string("\r\n") : std::string(1, C);
  uint32_t LfId = SM.addBuffer("lf.vlt", Lf);
  uint32_t CrlfId = SM.addBuffer("crlf.vlt", Crlf);
  auto LfToks = Lexer(SM, LfId, Diags).lexAll();
  auto CrlfToks = Lexer(SM, CrlfId, Diags).lexAll();
  EXPECT_EQ(Diags.errorCount(), 0u);
  ASSERT_EQ(LfToks.size(), CrlfToks.size());
  for (size_t I = 0; I < LfToks.size(); ++I) {
    EXPECT_EQ(LfToks[I].Kind, CrlfToks[I].Kind) << "token " << I;
    EXPECT_EQ(LfToks[I].Text, CrlfToks[I].Text) << "token " << I;
    PresumedLoc A = SM.presumed(LfToks[I].Loc);
    PresumedLoc B = SM.presumed(CrlfToks[I].Loc);
    EXPECT_EQ(A.Line, B.Line) << "token " << I;
    EXPECT_EQ(A.Column, B.Column) << "token " << I;
  }
}

TEST(Lexer, LoneCrEndsLineComment) {
  // A '//' comment ends at a bare '\r' (classic-Mac line break), not
  // only at '\n' — otherwise the comment would swallow the next line.
  static SourceManager SM;
  static DiagnosticEngine Diags(SM);
  uint32_t Id = SM.addBuffer("crcomment.vlt", "// comment\rkey L;");
  auto Toks = Lexer(SM, Id, Diags).lexAll();
  ASSERT_GE(Toks.size(), 2u);
  EXPECT_TRUE(Toks[0].is(TokKind::KwKey));
  EXPECT_EQ(SM.presumed(Toks[0].Loc).Line, 2u);
}

TEST(Lexer, CrTerminatesStringLiteral) {
  // A raw '\r' inside a string literal ends the line, so the literal
  // is unterminated — and the '\r' must never be decoded into the
  // string's contents.
  unsigned Errors = 0;
  auto Toks = lexAll("\"ab\rcd\"", &Errors);
  EXPECT_GE(Errors, 1u);
  ASSERT_FALSE(Toks.empty());
  EXPECT_TRUE(Toks[0].is(TokKind::StringLiteral));
  EXPECT_EQ(Toks[0].Text.find('\r'), std::string::npos);
}

TEST(Lexer, TabBeforeTokenCountsOneColumn) {
  static SourceManager SM;
  static DiagnosticEngine Diags(SM);
  uint32_t Id = SM.addBuffer("tabtok.vlt", "\t\tkey L;");
  auto Toks = Lexer(SM, Id, Diags).lexAll();
  ASSERT_GE(Toks.size(), 1u);
  EXPECT_TRUE(Toks[0].is(TokKind::KwKey));
  EXPECT_EQ(SM.presumed(Toks[0].Loc).Column, 3u);
}
