//===- TraceDeterminismTest.cpp - --trace-json validity & determinism -----===//
//
// Corpus-wide acceptance for the span tracer: every program's trace
// must parse as trace-event JSON, nest properly (within a thread,
// spans form a stack), carry monotonically non-decreasing timestamps,
// and contain the same span-name multiset at --jobs 1 and --jobs 8,
// and cold-cache vs warm-cache (cache replays emit synthetic
// zero-length "check <fn>" spans so the inventory never changes).
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

#include <algorithm>
#include <filesystem>
#include <gtest/gtest.h>
#include <map>
#include <set>

using namespace vault;

namespace {

/// One parsed trace event. The parser below understands exactly the
/// subset of JSON the Tracer emits (compact objects, string and
/// integer values, one nested "args" object).
struct Ev {
  std::string Name;
  uint64_t Ts = 0, Dur = 0, Tid = 0;
};

/// Reads a JSON string starting at S[I] == '"'. Returns the unescaped
/// content and advances I past the closing quote.
std::string parseString(const std::string &S, size_t &I) {
  EXPECT_EQ(S[I], '"');
  ++I;
  std::string Out;
  while (I < S.size() && S[I] != '"') {
    if (S[I] == '\\' && I + 1 < S.size()) {
      ++I;
      switch (S[I]) {
      case 'n': Out += '\n'; break;
      case 't': Out += '\t'; break;
      default: Out += S[I];
      }
    } else {
      Out += S[I];
    }
    ++I;
  }
  ++I; // Closing quote.
  return Out;
}

uint64_t parseInt(const std::string &S, size_t &I) {
  uint64_t V = 0;
  while (I < S.size() && S[I] >= '0' && S[I] <= '9')
    V = V * 10 + static_cast<uint64_t>(S[I++] - '0');
  return V;
}

/// Parses the Tracer's JSON document into events. Fails the current
/// test (and returns what it has) on malformed input.
std::vector<Ev> parseTrace(const std::string &J) {
  std::vector<Ev> Events;
  size_t I = J.find("\"traceEvents\":[");
  EXPECT_NE(I, std::string::npos) << "no traceEvents array";
  if (I == std::string::npos)
    return Events;
  I += 15;
  for (;;) {
    while (I < J.size() && (J[I] == ',' || J[I] == '\n' || J[I] == ' '))
      ++I;
    if (I >= J.size() || J[I] == ']')
      break;
    EXPECT_EQ(J[I], '{') << "event is not an object at offset " << I;
    ++I;
    Ev E;
    int Depth = 1; // Inside the event object; "args" nests one deeper.
    while (I < J.size() && Depth > 0) {
      if (J[I] == '}') {
        --Depth;
        ++I;
      } else if (J[I] == '{') {
        ++Depth;
        ++I;
      } else if (J[I] == '"') {
        std::string Key = parseString(J, I);
        EXPECT_EQ(J[I], ':') << "missing ':' after key " << Key;
        ++I;
        if (J[I] == '"') {
          std::string Val = parseString(J, I);
          if (Depth == 1 && Key == "name")
            E.Name = Val;
          else if (Depth == 1 && Key == "ph")
            EXPECT_EQ(Val, "X");
        } else if (J[I] >= '0' && J[I] <= '9') {
          uint64_t Val = parseInt(J, I);
          if (Depth == 1 && Key == "ts")
            E.Ts = Val;
          else if (Depth == 1 && Key == "dur")
            E.Dur = Val;
          else if (Depth == 1 && Key == "tid")
            E.Tid = Val;
        }
        // '{' (the args object) is handled by the Depth branch above.
      } else {
        ++I;
      }
    }
    EXPECT_FALSE(E.Name.empty()) << "event without a name";
    Events.push_back(std::move(E));
  }
  EXPECT_NE(J.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  return Events;
}

/// Checks the trace contract on one document: global timestamps
/// non-decreasing, and per-thread spans properly nested (a stack).
void validateTrace(const std::vector<Ev> &Events, const std::string &Label) {
  uint64_t PrevTs = 0;
  for (const Ev &E : Events) {
    EXPECT_GE(E.Ts, PrevTs) << Label << ": timestamps not sorted";
    PrevTs = E.Ts;
  }
  std::map<uint64_t, std::vector<const Ev *>> ByTid;
  for (const Ev &E : Events)
    ByTid[E.Tid].push_back(&E);
  for (auto &[Tid, Evs] : ByTid) {
    std::vector<const Ev *> Stack;
    for (const Ev *E : Evs) {
      while (!Stack.empty() && E->Ts >= Stack.back()->Ts + Stack.back()->Dur)
        Stack.pop_back();
      if (!Stack.empty()) {
        // Overlapping spans on one thread must nest, not straddle.
        EXPECT_LE(E->Ts + E->Dur, Stack.back()->Ts + Stack.back()->Dur)
            << Label << ": tid " << Tid << " span '" << E->Name
            << "' straddles '" << Stack.back()->Name << "'";
      }
      Stack.push_back(E);
    }
  }
}

std::multiset<std::string> names(const std::vector<Ev> &Events) {
  std::multiset<std::string> Out;
  for (const Ev &E : Events)
    Out.insert(E.Name);
  return Out;
}

std::string traceOf(const std::string &Name, const std::string &Text,
                    unsigned Jobs, const std::string &CacheDir = "") {
  Tracer T;
  VaultCompiler C;
  C.setTracer(&T);
  C.setJobs(Jobs);
  if (!CacheDir.empty())
    C.setCacheDir(CacheDir);
  C.addSource(Name, Text);
  C.check();
  return T.json();
}

class TraceDeterminism : public ::testing::TestWithParam<corpus::ProgramInfo> {
};

TEST_P(TraceDeterminism, ValidNestedAndJobAndCacheInvariant) {
  const corpus::ProgramInfo &P = GetParam();
  std::string Text = corpus::load(P.Name);
  ASSERT_FALSE(Text.empty()) << P.Name;
  std::string SrcName = P.Name + ".vlt";

  std::vector<Ev> Serial = parseTrace(traceOf(SrcName, Text, 1));
  ASSERT_FALSE(Serial.empty()) << P.Name;
  validateTrace(Serial, P.Name + " jobs=1");
  std::vector<Ev> Parallel = parseTrace(traceOf(SrcName, Text, 8));
  validateTrace(Parallel, P.Name + " jobs=8");
  EXPECT_EQ(names(Serial), names(Parallel))
      << P.Name << ": span inventory depends on job count";

  std::string Tag = P.Name;
  for (char &C : Tag)
    if (C == '/')
      C = '_';
  std::string Dir = ::testing::TempDir() + "vault-trace-" + Tag;
  std::filesystem::remove_all(Dir);
  std::vector<Ev> Cold = parseTrace(traceOf(SrcName, Text, 1, Dir));
  validateTrace(Cold, P.Name + " cold");
  std::vector<Ev> Warm = parseTrace(traceOf(SrcName, Text, 8, Dir));
  validateTrace(Warm, P.Name + " warm");
  EXPECT_EQ(names(Cold), names(Warm))
      << P.Name << ": span inventory differs cold vs warm cache";
  // The cached runs add exactly the cache I/O spans on top of the
  // uncached inventory.
  for (const char *Extra :
       {"cache-open", "cache-finalize", "cache-write-back", "fingerprint"})
    EXPECT_EQ(names(Cold).count(Extra), 1u) << P.Name << " missing " << Extra;
  std::filesystem::remove_all(Dir);
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, TraceDeterminism, ::testing::ValuesIn(corpus::index()),
    [](const ::testing::TestParamInfo<corpus::ProgramInfo> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

} // namespace
