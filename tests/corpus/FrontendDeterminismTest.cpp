//===- FrontendDeterminismTest.cpp - parallel front-end byte-identity -----===//
//
// The parallel front end's contract: queueSource'd buffers parse on
// the check() worker pool and signatures elaborate concurrently
// (discovery + reserved key windows), yet every observable — parse and
// sema diagnostics, key traces, statistics, cache fingerprints, trace
// span inventory — is byte-identical to the serial pipeline at any job
// count, cold and warm. This suite runs every corpus program through
// the queued path at jobs 1/4/16 and compares everything, then pins
// the merge-order and re-check properties on synthetic multi-buffer
// units.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "support/Trace.h"

#include <filesystem>
#include <gtest/gtest.h>
#include <set>

using namespace vault;

namespace {

/// Checks \p Name through the queued (parallel-parse) front end at the
/// given job count, with key tracing on.
std::unique_ptr<VaultCompiler> checkQueuedAt(const std::string &Name,
                                             unsigned Jobs,
                                             const std::string &CacheDir = "") {
  auto C = std::make_unique<VaultCompiler>();
  C->setJobs(Jobs);
  C->enableKeyTrace();
  if (!CacheDir.empty())
    C->setCacheDir(CacheDir);
  std::string Text = corpus::load(Name);
  if (!Text.empty()) {
    C->queueSource(Name + ".vlt", Text);
    C->check();
  }
  return C;
}

void expectIdenticalOutput(VaultCompiler &A, VaultCompiler &B,
                           const std::string &Label) {
  EXPECT_EQ(A.diags().errorCount(), B.diags().errorCount()) << Label;
  EXPECT_EQ(A.diags().render(), B.diags().render()) << Label;

  ASSERT_EQ(A.keyTrace().size(), B.keyTrace().size()) << Label;
  for (size_t I = 0; I < A.keyTrace().size(); ++I) {
    EXPECT_EQ(A.keyTrace()[I].Function, B.keyTrace()[I].Function)
        << Label << " trace entry " << I;
    EXPECT_EQ(A.keyTrace()[I].Held, B.keyTrace()[I].Held)
        << Label << " trace entry " << I;
  }

  const auto &SA = A.stats();
  const auto &SB = B.stats();
  EXPECT_EQ(SA.FunctionsChecked, SB.FunctionsChecked) << Label;
  EXPECT_EQ(SA.FunctionsWithBodies, SB.FunctionsWithBodies) << Label;
  EXPECT_EQ(SA.DeclsRegistered, SB.DeclsRegistered) << Label;
  ASSERT_EQ(SA.PerFunction.size(), SB.PerFunction.size()) << Label;
  for (size_t I = 0; I < SA.PerFunction.size(); ++I) {
    EXPECT_EQ(SA.PerFunction[I].Name, SB.PerFunction[I].Name)
        << Label << " function " << I;
    EXPECT_EQ(SA.PerFunction[I].MaxHeldKeys, SB.PerFunction[I].MaxHeldKeys)
        << Label << " function " << SA.PerFunction[I].Name;
  }
}

/// Every span name in a Tracer JSON document. Span names never contain
/// escapes (they are "parse", "elab <fn>", "check <fn>", ...), and
/// "name" appears as a key only on events, so a plain scan suffices.
std::multiset<std::string> spanNames(const std::string &J) {
  std::multiset<std::string> Out;
  const std::string Key = "\"name\":\"";
  for (size_t I = J.find(Key); I != std::string::npos; I = J.find(Key, I)) {
    I += Key.size();
    size_t End = J.find('"', I);
    if (End == std::string::npos)
      break;
    Out.insert(J.substr(I, End - I));
    I = End;
  }
  return Out;
}

class FrontendDeterminism
    : public ::testing::TestWithParam<corpus::ProgramInfo> {};

TEST_P(FrontendDeterminism, QueuedPipelineMatchesAtAnyJobCount) {
  const corpus::ProgramInfo &P = GetParam();
  auto J1 = checkQueuedAt(P.Name, 1);
  auto J4 = checkQueuedAt(P.Name, 4);
  auto J16 = checkQueuedAt(P.Name, 16);
  expectIdenticalOutput(*J1, *J4, P.Name + " jobs 1 vs 4");
  expectIdenticalOutput(*J1, *J16, P.Name + " jobs 1 vs 16");
  EXPECT_EQ(P.ExpectAccept, !J16->diags().hasErrors())
      << P.PaperRef << ":\n"
      << J16->diags().render();

  // The queued path must also match the inline addSource path exactly
  // — it is the same pipeline, only scheduled differently.
  auto Inline = std::make_unique<VaultCompiler>();
  Inline->setJobs(1);
  Inline->enableKeyTrace();
  std::string Text = corpus::load(P.Name);
  if (!Text.empty()) {
    Inline->addSource(P.Name + ".vlt", Text);
    Inline->check();
  }
  expectIdenticalOutput(*Inline, *J16, P.Name + " inline vs queued");
}

TEST_P(FrontendDeterminism, WarmCacheCrossesJobCounts) {
  // A cache built by a serial run must replay fully under a parallel
  // one: fingerprints hash raw key syms and state-variable ids, so
  // this pins that the parallel front end reproduces the serial
  // numbering exactly.
  const corpus::ProgramInfo &P = GetParam();
  std::string Tag = P.Name;
  for (char &C : Tag)
    if (C == '/')
      C = '_';
  std::string Dir = ::testing::TempDir() + "vault-frontend-" + Tag;
  std::filesystem::remove_all(Dir);

  auto Cold = std::make_unique<VaultCompiler>();
  Cold->setJobs(1);
  Cold->setCacheDir(Dir);
  std::string Text = corpus::load(P.Name);
  ASSERT_FALSE(Text.empty()) << P.Name;
  Cold->queueSource(P.Name + ".vlt", Text);
  Cold->check();

  auto Warm = std::make_unique<VaultCompiler>();
  Warm->setJobs(16);
  Warm->setCacheDir(Dir);
  Warm->queueSource(P.Name + ".vlt", Text);
  Warm->check();

  EXPECT_EQ(Cold->diags().render(), Warm->diags().render()) << P.Name;
  if (Cold->stats().CacheEnabled && Warm->stats().CacheEnabled) {
    EXPECT_EQ(Warm->stats().CacheHits, Warm->stats().FunctionsChecked)
        << P.Name << ": parallel warm run missed a serial run's cache";
    EXPECT_EQ(Warm->stats().FlowChecksRun, 0u) << P.Name;
  }
  std::filesystem::remove_all(Dir);
}

TEST_P(FrontendDeterminism, SpanInventoryIsJobAndCacheInvariant) {
  const corpus::ProgramInfo &P = GetParam();
  std::string Text = corpus::load(P.Name);
  ASSERT_FALSE(Text.empty()) << P.Name;

  auto traceOf = [&](unsigned Jobs, const std::string &CacheDir) {
    Tracer T;
    VaultCompiler C;
    C.setTracer(&T);
    C.setJobs(Jobs);
    if (!CacheDir.empty())
      C.setCacheDir(CacheDir);
    C.queueSource(P.Name + ".vlt", Text);
    C.check();
    return T.json();
  };

  std::multiset<std::string> Serial = spanNames(traceOf(1, ""));
  std::multiset<std::string> Parallel = spanNames(traceOf(16, ""));
  ASSERT_FALSE(Serial.empty()) << P.Name;
  EXPECT_EQ(Serial, Parallel)
      << P.Name << ": span inventory depends on job count";
  EXPECT_EQ(Serial.count("parse"), 1u) << P.Name;
  EXPECT_EQ(Serial.count("parse-sources"), 1u) << P.Name;

  std::string Tag = P.Name;
  for (char &C : Tag)
    if (C == '/')
      C = '_';
  std::string Dir = ::testing::TempDir() + "vault-frontend-trace-" + Tag;
  std::filesystem::remove_all(Dir);
  std::multiset<std::string> Cold = spanNames(traceOf(1, Dir));
  std::multiset<std::string> Warm = spanNames(traceOf(16, Dir));
  EXPECT_EQ(Cold, Warm)
      << P.Name << ": span inventory differs cold vs warm cache";
  std::filesystem::remove_all(Dir);
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, FrontendDeterminism, ::testing::ValuesIn(corpus::index()),
    [](const ::testing::TestParamInfo<corpus::ProgramInfo> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST(FrontendDeterminism, ManyBuffersMergeInInputOrder) {
  // More buffers than workers, a parse error in every third one:
  // diagnostics must come out in input order at any job count, and the
  // combined program must register every declaration exactly as serial
  // parsing would.
  auto runAt = [&](unsigned Jobs) {
    auto C = std::make_unique<VaultCompiler>();
    C->setJobs(Jobs);
    for (int I = 0; I < 24; ++I) {
      std::string N = "f" + std::to_string(I);
      std::string Src;
      if (I % 3 == 2)
        Src = "void " + N + "() { int x = ; }\n"; // Syntax error.
      else
        Src = "void " + N + "() { int x = 1; }\n";
      C->queueSource("buf" + std::to_string(I) + ".vlt", Src);
    }
    C->check();
    return C;
  };
  auto Serial = runAt(1);
  auto Parallel = runAt(16);
  EXPECT_TRUE(Serial->diags().hasErrors());
  EXPECT_EQ(Serial->diags().render(), Parallel->diags().render());
  EXPECT_EQ(Serial->stats().DeclsRegistered, Parallel->stats().DeclsRegistered);
  EXPECT_GE(Serial->stats().DeclsRegistered, 16u);

  // Input order: the erroneous buffers are buf2, buf5, buf8, ... and
  // each diagnostic names its buffer, so the reported buffer indices
  // must be strictly increasing regardless of which worker parsed
  // which buffer.
  int LastBuf = -1;
  for (const Diagnostic &D : Parallel->diags().diagnostics()) {
    PresumedLoc P = Parallel->sources().presumed(D.Loc);
    ASSERT_TRUE(P.isValid());
    std::string File = P.BufferName;
    ASSERT_EQ(File.rfind("buf", 0), 0u) << File;
    int Buf = std::stoi(File.substr(3));
    EXPECT_GE(Buf, LastBuf);
    LastBuf = Buf;
  }
}

TEST(FrontendDeterminism, SignatureErrorsMergeInSourceOrder) {
  // Pass-2 diagnostics (bad signatures) interleaved with good
  // functions: the parallel signature elaboration must report them in
  // source order with identical text.
  std::string Src;
  for (int I = 0; I < 16; ++I) {
    std::string N = "g" + std::to_string(I);
    if (I % 4 == 1)
      Src += "NoSuchType " + N + "();\n"; // Unknown return type.
    else
      Src += "void " + N + "() {}\n";
  }
  auto runAt = [&](unsigned Jobs) {
    auto C = std::make_unique<VaultCompiler>();
    C->setJobs(Jobs);
    C->queueSource("sigs.vlt", Src);
    C->check();
    return C;
  };
  auto Serial = runAt(1);
  auto Parallel = runAt(16);
  EXPECT_TRUE(Serial->diags().hasErrors());
  EXPECT_EQ(Serial->diags().render(), Parallel->diags().render());

  unsigned LastLine = 0;
  for (const Diagnostic &D : Parallel->diags().diagnostics()) {
    PresumedLoc P = Parallel->sources().presumed(D.Loc);
    ASSERT_TRUE(P.isValid());
    EXPECT_GE(P.Line, LastLine);
    LastLine = P.Line;
  }
}

TEST(FrontendDeterminism, RecheckKeepsParseDiagnosticsOnce) {
  // Parse diagnostics from queued buffers must behave like
  // addSource's: reported once, kept across a re-check, never
  // duplicated.
  auto C = std::make_unique<VaultCompiler>();
  C->setJobs(4);
  C->queueSource("ok.vlt", "void a() { int x = 1; }\n");
  C->queueSource("bad.vlt", "void b() { int x = ; }\n");
  EXPECT_FALSE(C->check());
  std::string First = C->diags().render();
  EXPECT_FALSE(C->check());
  EXPECT_EQ(First, C->diags().render())
      << "re-check duplicated or dropped parse diagnostics";
}

TEST(FrontendDeterminism, QueueAndAddSourceInterleave) {
  // queueSource and addSource may be mixed, but they are not
  // interchangeable positionally: addSource parses immediately while
  // queued buffers parse at check(), so the combined program is every
  // inline source (in call order) followed by every queued source (in
  // queue order). Pin that contract.
  auto C = std::make_unique<VaultCompiler>();
  C->setJobs(8);
  C->queueSource("a.vlt", "void a() { int x = 1; }\n");
  C->addSource("b.vlt", "void b() { int y = 2; }\n");
  C->queueSource("c.vlt", "void c() { int z = 3; }\n");
  EXPECT_TRUE(C->check()) << C->diags().render();
  ASSERT_EQ(C->stats().PerFunction.size(), 3u);
  EXPECT_EQ(C->stats().PerFunction[0].Name, "b");
  EXPECT_EQ(C->stats().PerFunction[1].Name, "a");
  EXPECT_EQ(C->stats().PerFunction[2].Name, "c");
}

} // namespace
