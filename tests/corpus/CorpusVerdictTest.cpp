//===- CorpusVerdictTest.cpp - Every paper figure, expected verdict -------===//

#include "corpus/Corpus.h"

#include <gtest/gtest.h>

using namespace vault;

namespace {

class CorpusVerdict : public ::testing::TestWithParam<corpus::ProgramInfo> {};

TEST_P(CorpusVerdict, StaticVerdictMatchesPaper) {
  const auto &P = GetParam();
  auto C = corpus::check(P.Name);
  if (P.ExpectAccept) {
    EXPECT_FALSE(C->diags().hasErrors())
        << P.PaperRef << " should be accepted:\n"
        << C->diags().render();
  } else {
    EXPECT_TRUE(C->diags().hasErrors())
        << P.PaperRef << " should be rejected";
    for (DiagId Id : P.MustReport)
      EXPECT_TRUE(C->diags().has(Id))
          << P.PaperRef << " must report " << diagName(Id) << ":\n"
          << C->diags().render();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, CorpusVerdict, ::testing::ValuesIn(corpus::index()),
    [](const ::testing::TestParamInfo<corpus::ProgramInfo> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST(Corpus, IndexCoversThePaper) {
  // One entry per reproduced artifact class at minimum.
  bool HasFig2 = false, HasFig3 = false, HasFig4 = false, HasFig5 = false,
       HasFig7 = false, HasDriver = false, HasIrql = false;
  for (const auto &P : corpus::index()) {
    if (P.Name.find("fig2") != std::string::npos)
      HasFig2 = true;
    if (P.Name.find("fig3") != std::string::npos)
      HasFig3 = true;
    if (P.Name.find("fig4") != std::string::npos)
      HasFig4 = true;
    if (P.Name.find("fig5") != std::string::npos)
      HasFig5 = true;
    if (P.Name.find("fig7") != std::string::npos)
      HasFig7 = true;
    if (P.Name.find("floppy") != std::string::npos)
      HasDriver = true;
    if (P.Name.find("irql") != std::string::npos)
      HasIrql = true;
  }
  EXPECT_TRUE(HasFig2 && HasFig3 && HasFig4 && HasFig5 && HasFig7 &&
              HasDriver && HasIrql);
  EXPECT_GE(corpus::index().size(), 40u);
}

TEST(Corpus, LoaderResolvesIncludes) {
  std::string Text = corpus::load("figures/fig2_okay");
  ASSERT_FALSE(Text.empty());
  EXPECT_EQ(Text.find("//!include"), std::string::npos);
  EXPECT_NE(Text.find("interface REGION"), std::string::npos);
  EXPECT_NE(Text.find("void main()"), std::string::npos);
}

TEST(Corpus, MissingProgramReportsCleanly) {
  auto C = corpus::check("no/such/program");
  EXPECT_TRUE(C->diags().hasErrors());
}

} // namespace
