//===- JobsDeterminismTest.cpp - jobs=1 vs jobs=N byte-identity -----------===//
//
// The parallel Pass 3 contract: any job count produces byte-identical
// diagnostics, key traces and statistics, because every function is
// checked in isolation (own diagnostics buffer, own type arena, seeded
// state-variable counter, per-function key display ids) and the
// results are merged in source order. This suite runs every corpus
// program both ways and compares everything observable.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

#include <gtest/gtest.h>

using namespace vault;

namespace {

/// Checks \p Name at the given job count, with key tracing on.
std::unique_ptr<VaultCompiler> checkAt(const std::string &Name,
                                       unsigned Jobs) {
  auto C = std::make_unique<VaultCompiler>();
  C->setJobs(Jobs);
  C->enableKeyTrace();
  std::string Text = corpus::load(Name);
  if (!Text.empty()) {
    C->addSource(Name + ".vlt", Text);
    C->check();
  }
  return C;
}

void expectIdenticalOutput(VaultCompiler &Serial, VaultCompiler &Parallel,
                           const std::string &Label) {
  EXPECT_EQ(Serial.diags().errorCount(), Parallel.diags().errorCount())
      << Label;
  EXPECT_EQ(Serial.diags().render(), Parallel.diags().render()) << Label;

  ASSERT_EQ(Serial.keyTrace().size(), Parallel.keyTrace().size()) << Label;
  for (size_t I = 0; I < Serial.keyTrace().size(); ++I) {
    EXPECT_EQ(Serial.keyTrace()[I].Function, Parallel.keyTrace()[I].Function)
        << Label << " trace entry " << I;
    EXPECT_EQ(Serial.keyTrace()[I].Held, Parallel.keyTrace()[I].Held)
        << Label << " trace entry " << I;
  }

  const auto &SS = Serial.stats();
  const auto &PS = Parallel.stats();
  EXPECT_EQ(SS.FunctionsChecked, PS.FunctionsChecked) << Label;
  EXPECT_EQ(SS.FunctionsWithBodies, PS.FunctionsWithBodies) << Label;
  EXPECT_EQ(SS.DeclsRegistered, PS.DeclsRegistered) << Label;
  ASSERT_EQ(SS.PerFunction.size(), PS.PerFunction.size()) << Label;
  for (size_t I = 0; I < SS.PerFunction.size(); ++I) {
    EXPECT_EQ(SS.PerFunction[I].Name, PS.PerFunction[I].Name)
        << Label << " function " << I;
    EXPECT_EQ(SS.PerFunction[I].MaxHeldKeys, PS.PerFunction[I].MaxHeldKeys)
        << Label << " function " << SS.PerFunction[I].Name;
  }
}

class JobsDeterminism : public ::testing::TestWithParam<corpus::ProgramInfo> {
};

TEST_P(JobsDeterminism, ParallelMatchesSerial) {
  const auto &P = GetParam();
  auto Serial = checkAt(P.Name, 1);
  auto Parallel = checkAt(P.Name, 8);
  expectIdenticalOutput(*Serial, *Parallel, P.Name);
  // And both must still match the paper's verdict.
  EXPECT_EQ(P.ExpectAccept, !Parallel->diags().hasErrors())
      << P.PaperRef << ":\n"
      << Parallel->diags().render();
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, JobsDeterminism, ::testing::ValuesIn(corpus::index()),
    [](const ::testing::TestParamInfo<corpus::ProgramInfo> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST(JobsDeterminism, ManyFunctionsWithErrorsMergeInSourceOrder) {
  // A synthetic unit with more functions than workers, alternating
  // clean and buggy bodies: diagnostics must come out in source order
  // at any job count, and key display ids must not depend on which
  // worker checked which function.
  std::string Src = R"(
interface REGION {
  type region;
  tracked(R) region create() [new R];
  void delete(tracked(R) region) [-R];
}
extern module Region : REGION;
)";
  for (int I = 0; I < 24; ++I) {
    std::string N = "f" + std::to_string(I);
    if (I % 3 == 2) {
      // Leaks its region.
      Src += "void " + N + "() { tracked region r = Region.create(); }\n";
    } else {
      Src += "void " + N +
             "() { tracked region r = Region.create(); Region.delete(r); }\n";
    }
  }

  auto runAt = [&](unsigned Jobs) {
    auto C = std::make_unique<VaultCompiler>();
    C->setJobs(Jobs);
    C->enableKeyTrace();
    C->addSource("many.vlt", Src);
    C->check();
    return C;
  };
  auto Serial = runAt(1);
  auto Parallel = runAt(8);
  EXPECT_TRUE(Serial->diags().hasErrors());
  EXPECT_EQ(Serial->diags().errorCount(), 8u) << Serial->diags().render();
  expectIdenticalOutput(*Serial, *Parallel, "many.vlt");

  // Source order: each buggy function is one line, so the reported
  // lines must be strictly increasing regardless of completion order.
  unsigned LastLine = 0;
  for (const Diagnostic &D : Parallel->diags().diagnostics()) {
    PresumedLoc P = Parallel->sources().presumed(D.Loc);
    ASSERT_TRUE(P.isValid());
    EXPECT_GT(P.Line, LastLine);
    LastLine = P.Line;
  }
}

TEST(JobsDeterminism, ZeroMeansHardwareConcurrency) {
  auto C = std::make_unique<VaultCompiler>();
  C->setJobs(0);
  std::string Text = corpus::load("figures/fig2_okay");
  ASSERT_FALSE(Text.empty());
  C->addSource("fig2.vlt", Text);
  EXPECT_TRUE(C->check()) << C->diags().render();
  EXPECT_GE(C->stats().JobsUsed, 1u);
}

} // namespace
