//===- CaseStudyTest.cpp - The §4 floppy-driver case study ----------------===//

#include "corpus/Corpus.h"
#include "lower/CEmitter.h"

#include <gtest/gtest.h>

#include <chrono>

using namespace vault;

namespace {

TEST(CaseStudy, DriverTypeChecks) {
  auto C = corpus::check("driver/floppy");
  EXPECT_FALSE(C->diags().hasErrors()) << C->diags().render();
  // All the dispatch routines plus the helpers were verified.
  EXPECT_GE(C->stats().FunctionsChecked, 10u);
}

TEST(CaseStudy, DriverUsesTheWholeFeatureSet) {
  std::string Src = corpus::load("driver/floppy");
  ASSERT_FALSE(Src.empty());
  // Tracked IRPs with consume effects.
  EXPECT_NE(Src.find("tracked(I) IRP"), std::string::npos);
  EXPECT_NE(Src.find("[-I"), std::string::npos);
  // The Fig. 7 idiom.
  EXPECT_NE(Src.find("KeInitializeEvent"), std::string::npos);
  EXPECT_NE(Src.find("'MoreProcessingRequired"), std::string::npos);
  EXPECT_NE(Src.find("IoSetCompletionRoutine"), std::string::npos);
  // Lock-guarded queueing and IRQL polymorphism.
  EXPECT_NE(Src.find("KeAcquireSpinLock"), std::string::npos);
  EXPECT_NE(Src.find("IRQL @ (level <= DISPATCH_LEVEL)"), std::string::npos);
  // Paged configuration data.
  EXPECT_NE(Src.find("paged<DISK_GEOMETRY>"), std::string::npos);
}

TEST(CaseStudy, SingleBrokenPathIsCaught) {
  // Take the verified driver and break exactly one path (remove one
  // IoCompleteRequest): the checker must localize the error.
  std::string Src = corpus::load("driver/floppy");
  std::string Needle = "    IoCompleteRequest(irp, -3);\n    return;";
  auto Pos = Src.find(Needle);
  ASSERT_NE(Pos, std::string::npos);
  Src.replace(Pos, Needle.size(), "    return;");

  VaultCompiler C;
  C.addSource("broken_floppy.vlt", Src);
  EXPECT_FALSE(C.check());
  EXPECT_TRUE(C.diags().has(DiagId::FlowKeyLeaked)) << C.diags().render();
}

TEST(CaseStudy, ForgettingReleaseInDriverIsCaught) {
  std::string Src = corpus::load("driver/floppy");
  // Remove the queue-lock release in FloppyReadWrite.
  std::string Needle = "  Enqueue(queue, irp);\n  KeReleaseSpinLock(qlock, saved);";
  auto Pos = Src.find(Needle);
  ASSERT_NE(Pos, std::string::npos);
  Src.replace(Pos, Needle.size(), "  Enqueue(queue, irp);");

  VaultCompiler C;
  C.addSource("lockleak_floppy.vlt", Src);
  EXPECT_FALSE(C.check());
}

TEST(CaseStudy, LineCountsHaveThePaperShape) {
  // The paper: 4900 lines of C -> 5200 lines of Vault (~6% growth).
  // Our scaled-down driver must show the same *shape*: the Vault
  // source is within a modest factor of the erased C.
  auto C = corpus::check("driver/floppy");
  ASSERT_FALSE(C->diags().hasErrors());
  std::string Src = corpus::load("driver/floppy");
  size_t VaultLines = CEmitter::countCodeLines(Src);

  CEmitter E(*C);
  std::string CSrc = E.emitProgram();
  size_t CLines = CEmitter::countCodeLines(CSrc);

  EXPECT_GT(VaultLines, 150u) << "a substantive driver";
  EXPECT_GT(CLines, 100u);
  double Ratio = static_cast<double>(VaultLines) / static_cast<double>(CLines);
  EXPECT_GT(Ratio, 0.5) << "Vault should not be wildly smaller";
  EXPECT_LT(Ratio, 2.0) << "annotation overhead stays moderate "
                        << "(paper: 5200/4900 = 1.06)";
}

TEST(CaseStudy, CheckerIsFastEnoughForInteractiveUse) {
  // The driver must check in well under a second (engineering sanity,
  // detailed measurements live in bench_checker).
  auto Start = std::chrono::steady_clock::now();
  auto C = corpus::check("driver/floppy");
  auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
  EXPECT_FALSE(C->diags().hasErrors());
  EXPECT_LT(Elapsed, 2000);
}

} // namespace
