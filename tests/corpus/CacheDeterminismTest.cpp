//===- CacheDeterminismTest.cpp - warm vs cold cache byte-identity --------===//
//
// The incremental-check contract: with --cache-dir, a warm re-check of
// an unchanged program performs zero per-function flow checks and
// replays byte-identical diagnostics — at any job count. And edits
// invalidate precisely: a changed callee signature or stateset forces
// dependents to re-check while untouched functions stay cached.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

using namespace vault;

namespace {

/// Fresh, empty cache directory unique to the calling test.
std::string freshCacheDir(const std::string &Tag) {
  std::string Dir = ::testing::TempDir() + "vault-cache-" + Tag;
  std::filesystem::remove_all(Dir);
  return Dir;
}

std::unique_ptr<VaultCompiler> checkCached(const std::string &Name,
                                           const std::string &Text,
                                           const std::string &CacheDir,
                                           unsigned Jobs = 1) {
  auto C = std::make_unique<VaultCompiler>();
  C->setJobs(Jobs);
  C->setCacheDir(CacheDir);
  C->addSource(Name, Text);
  C->check();
  return C;
}

class CacheDeterminism : public ::testing::TestWithParam<corpus::ProgramInfo> {
};

TEST_P(CacheDeterminism, WarmRunReplaysColdRunByteForByte) {
  const auto &P = GetParam();
  std::string Text = corpus::load(P.Name);
  ASSERT_FALSE(Text.empty());
  std::string Tag = P.Name;
  for (char &C : Tag)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  std::string Dir = freshCacheDir(Tag);

  auto Cold = checkCached(P.Name + ".vlt", Text, Dir);
  ASSERT_TRUE(Cold->stats().CacheEnabled) << P.Name;
  EXPECT_EQ(Cold->stats().CacheHits, 0u) << P.Name;
  EXPECT_EQ(Cold->stats().FlowChecksRun, Cold->stats().FunctionsChecked)
      << P.Name;

  for (unsigned Jobs : {1u, 8u}) {
    auto Warm = checkCached(P.Name + ".vlt", Text, Dir, Jobs);
    ASSERT_TRUE(Warm->stats().CacheEnabled) << P.Name;
    EXPECT_EQ(Warm->stats().FlowChecksRun, 0u)
        << P.Name << " at jobs=" << Jobs;
    EXPECT_EQ(Warm->stats().CacheHits, Warm->stats().FunctionsWithBodies)
        << P.Name << " at jobs=" << Jobs;
    EXPECT_EQ(Warm->stats().CacheInvalidations, 0u) << P.Name;
    EXPECT_EQ(Cold->diags().render(), Warm->diags().render())
        << P.Name << " at jobs=" << Jobs;
    EXPECT_EQ(Cold->diags().errorCount(), Warm->diags().errorCount())
        << P.Name;
    EXPECT_EQ(P.ExpectAccept, !Warm->diags().hasErrors())
        << P.PaperRef << ":\n"
        << Warm->diags().render();
    // Replay preserves the per-function observability stats too.
    ASSERT_EQ(Cold->stats().PerFunction.size(),
              Warm->stats().PerFunction.size());
    for (size_t I = 0; I < Cold->stats().PerFunction.size(); ++I) {
      EXPECT_EQ(Cold->stats().PerFunction[I].Name,
                Warm->stats().PerFunction[I].Name);
      EXPECT_EQ(Cold->stats().PerFunction[I].MaxHeldKeys,
                Warm->stats().PerFunction[I].MaxHeldKeys)
          << P.Name << " function " << Cold->stats().PerFunction[I].Name;
    }
  }
  std::filesystem::remove_all(Dir);
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, CacheDeterminism, ::testing::ValuesIn(corpus::index()),
    [](const ::testing::TestParamInfo<corpus::ProgramInfo> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST(CacheInvalidation, CalleeSignatureEditRechecksCallersOnly) {
  const char *Before = "key L;\n"
                       "void acquire() [ +L ];\n"
                       "void release() [ -L ];\n"
                       "void user() { acquire(); release(); }\n"
                       "void bystander() { int x = 1; }\n";
  // Adding a parameter to release() changes its signature: user()
  // must re-check (and now errors), bystander() must stay cached.
  const char *After = "key L;\n"
                      "void acquire() [ +L ];\n"
                      "void release(int why) [ -L ];\n"
                      "void user() { acquire(); release(); }\n"
                      "void bystander() { int x = 1; }\n";
  std::string Dir = freshCacheDir("callee-sig-edit");

  auto Cold = checkCached("p.vlt", Before, Dir);
  ASSERT_TRUE(Cold->stats().CacheEnabled);
  EXPECT_FALSE(Cold->diags().hasErrors()) << Cold->diags().render();
  EXPECT_EQ(Cold->stats().FlowChecksRun, 2u);

  auto Edited = checkCached("p.vlt", After, Dir);
  ASSERT_TRUE(Edited->stats().CacheEnabled);
  EXPECT_TRUE(Edited->diags().hasErrors());
  EXPECT_EQ(Edited->stats().CacheHits, 1u) << "bystander stays cached";
  EXPECT_EQ(Edited->stats().CacheMisses, 1u) << "user re-checks";
  EXPECT_EQ(Edited->stats().CacheInvalidations, 1u);
  EXPECT_EQ(Edited->stats().FlowChecksRun, 1u);
  std::filesystem::remove_all(Dir);
}

TEST(CacheInvalidation, StatesetEditRechecksDependents) {
  const char *Before = "stateset ORDER = [ raw < cooked ];\n"
                       "key K @ ORDER;\n"
                       "void cook() [ K@raw -> cooked ];\n"
                       "void user() [ K@raw -> cooked ] { cook(); }\n"
                       "void bystander() { int x = 1; }\n";
  // Renaming a state invalidates everything that can see the
  // stateset (through key K), but not the unrelated bystander.
  const char *After = "stateset ORDER = [ rare < cooked ];\n"
                      "key K @ ORDER;\n"
                      "void cook() [ K@raw -> cooked ];\n"
                      "void user() [ K@raw -> cooked ] { cook(); }\n"
                      "void bystander() { int x = 1; }\n";
  std::string Dir = freshCacheDir("stateset-edit");

  auto Cold = checkCached("s.vlt", Before, Dir);
  ASSERT_TRUE(Cold->stats().CacheEnabled);
  EXPECT_FALSE(Cold->diags().hasErrors()) << Cold->diags().render();

  auto Edited = checkCached("s.vlt", After, Dir);
  ASSERT_TRUE(Edited->stats().CacheEnabled);
  EXPECT_GE(Edited->stats().CacheInvalidations, 1u) << "user must re-check";
  EXPECT_GE(Edited->stats().CacheHits, 1u) << "bystander stays cached";
  std::filesystem::remove_all(Dir);
}

TEST(CacheInvalidation, GuardedAnnotationEditRechecksExactlyTheDirtied) {
  // Dropping the guarded<M> annotation from cell_new's return type is
  // a signature edit of the MUTEX interface member: the function that
  // calls it must re-check (its callee fingerprint changed), while the
  // bystander stays cached.
  const char *Before =
      "interface MUTEX {\n"
      "  type mutex;\n"
      "  struct cell { int val; }\n"
      "  tracked(@unlocked) mutex mutex_create();\n"
      "  void mutex_acquire(tracked(M) mutex) [M@unlocked->locked];\n"
      "  void mutex_release(tracked(M) mutex) [M@locked->unlocked];\n"
      "  void mutex_destroy(tracked(M) mutex) [-M@unlocked];\n"
      "  guarded<M> tracked cell cell_new(tracked(M) mutex, int val) "
      "[M@locked];\n"
      "}\n"
      "void touch() {\n"
      "  tracked(M) mutex m = mutex_create();\n"
      "  mutex_acquire(m);\n"
      "  guarded<M> tracked(D) cell d = cell_new(m, 1);\n"
      "  d.val = 2;\n"
      "  free(d);\n"
      "  mutex_release(m);\n"
      "  mutex_destroy(m);\n"
      "}\n"
      "void bystander() { int x = 1; }\n";
  std::string After(Before);
  // The edit: cell_new now returns an unguarded tracked cell, and
  // touch's binding drops the guard to match. Both edits dirty touch
  // (its body and its callee's signature) and nothing else.
  for (size_t At = After.find("guarded<M> "); At != std::string::npos;
       At = After.find("guarded<M> "))
    After.replace(At, std::string("guarded<M> ").size(), "");
  std::string Dir = freshCacheDir("guarded-edit");

  auto Cold = checkCached("g.vlt", Before, Dir);
  ASSERT_TRUE(Cold->stats().CacheEnabled);
  EXPECT_FALSE(Cold->diags().hasErrors()) << Cold->diags().render();
  EXPECT_EQ(Cold->stats().FlowChecksRun, 2u);

  auto Edited = checkCached("g.vlt", After, Dir);
  ASSERT_TRUE(Edited->stats().CacheEnabled);
  EXPECT_EQ(Edited->stats().CacheHits, 1u) << "bystander stays cached";
  EXPECT_EQ(Edited->stats().CacheMisses, 1u) << "touch re-checks";
  EXPECT_EQ(Edited->stats().FlowChecksRun, 1u);

  // And a warm replay of the edited program re-checks nothing.
  auto Warm = checkCached("g.vlt", After, Dir);
  EXPECT_EQ(Warm->stats().FlowChecksRun, 0u);
  EXPECT_EQ(Warm->diags().render(), Edited->diags().render());
  std::filesystem::remove_all(Dir);
}

TEST(CacheBehavior, KeyTracingBypassesTheCache) {
  std::string Text = corpus::load("figures/fig2_okay");
  ASSERT_FALSE(Text.empty());
  std::string Dir = freshCacheDir("tracing");
  auto C = std::make_unique<VaultCompiler>();
  C->setCacheDir(Dir);
  C->enableKeyTrace();
  C->addSource("fig2.vlt", Text);
  C->check();
  EXPECT_FALSE(C->stats().CacheEnabled);
  EXPECT_FALSE(C->keyTrace().empty());
  std::filesystem::remove_all(Dir);
}

TEST(CacheBehavior, CorruptEntryIsAMissNotAnError) {
  std::string Text = corpus::load("figures/fig5_join");
  ASSERT_FALSE(Text.empty());
  std::string Dir = freshCacheDir("corrupt");
  auto Cold = checkCached("fig5.vlt", Text, Dir);
  ASSERT_TRUE(Cold->stats().CacheEnabled);

  // Truncate every stored entry; the warm run must fall back to
  // re-checking and still produce identical output.
  for (const auto &E : std::filesystem::directory_iterator(Dir))
    if (E.path().extension() == ".vfc")
      std::ofstream(E.path(), std::ios::trunc) << "VFC 1\nmax-held 0\nD trunc";
  auto Warm = checkCached("fig5.vlt", Text, Dir);
  ASSERT_TRUE(Warm->stats().CacheEnabled);
  EXPECT_EQ(Warm->stats().CacheHits, 0u);
  EXPECT_EQ(Warm->stats().FlowChecksRun, Warm->stats().FunctionsChecked);
  EXPECT_EQ(Cold->diags().render(), Warm->diags().render());
  std::filesystem::remove_all(Dir);
}

} // namespace
