//===- SpinLockEventTest.cpp - Spin locks and events ----------------------===//

#include "kernel/DriverStack.h"

#include <gtest/gtest.h>

using namespace vault::kern;

namespace {

TEST(SpinLocks, AcquireRaisesToDispatch) {
  Oracle O;
  IrqlController C(O);
  SpinLock L("q");
  Irql Old = L.acquire(C, O);
  EXPECT_EQ(Old, Irql::Passive);
  EXPECT_EQ(C.current(), Irql::Dispatch);
  EXPECT_TRUE(L.isHeld());
  L.release(C, O, Old);
  EXPECT_EQ(C.current(), Irql::Passive);
  EXPECT_FALSE(L.isHeld());
  EXPECT_EQ(O.total(), 0u);
}

TEST(SpinLocks, DoubleAcquireIsDeadlock) {
  Oracle O;
  IrqlController C(O);
  SpinLock L("q");
  L.acquire(C, O);
  L.acquire(C, O);
  EXPECT_EQ(O.count(Violation::LockDoubleAcquire), 1u);
}

TEST(SpinLocks, ReleaseNotHeld) {
  Oracle O;
  IrqlController C(O);
  SpinLock L("q");
  L.release(C, O, Irql::Passive);
  EXPECT_EQ(O.count(Violation::LockReleaseNotHeld), 1u);
}

TEST(SpinLocks, NestedLocksRestoreInOrder) {
  Oracle O;
  IrqlController C(O);
  SpinLock L1("a"), L2("b");
  Irql S1 = L1.acquire(C, O); // PASSIVE -> DISPATCH
  Irql S2 = L2.acquire(C, O); // DISPATCH -> DISPATCH
  EXPECT_EQ(S1, Irql::Passive);
  EXPECT_EQ(S2, Irql::Dispatch);
  L2.release(C, O, S2);
  EXPECT_EQ(C.current(), Irql::Dispatch);
  L1.release(C, O, S1);
  EXPECT_EQ(C.current(), Irql::Passive);
  EXPECT_EQ(O.total(), 0u);
}

TEST(SpinLocks, SavedLevelConvenienceRelease) {
  Oracle O;
  IrqlController C(O);
  SpinLock L("q");
  L.acquire(C, O);
  L.release(C, O); // Uses the internally saved level.
  EXPECT_EQ(C.current(), Irql::Passive);
}

TEST(Events, SignalThenWaitSucceedsImmediately) {
  Kernel K;
  KEvent E("e");
  K.initializeEvent(E);
  K.setEvent(E);
  EXPECT_TRUE(K.waitForEvent(E));
  EXPECT_EQ(K.oracle().total(), 0u);
}

TEST(Events, WaitDrainsWorkUntilSignal) {
  Kernel K;
  KEvent E("e");
  K.initializeEvent(E);
  int Steps = 0;
  K.queueWorkItem([&Steps](Kernel &) { ++Steps; });
  K.queueWorkItem([&Steps, &E](Kernel &Kn) {
    ++Steps;
    Kn.setEvent(E);
  });
  K.queueWorkItem([&Steps](Kernel &) { ++Steps; });
  EXPECT_TRUE(K.waitForEvent(E));
  EXPECT_EQ(Steps, 2) << "wait stops as soon as the event is signaled";
  EXPECT_EQ(K.pendingWork(), 1u);
}

TEST(Events, ReinitializeClearsSignal) {
  Kernel K;
  KEvent E("e");
  K.setEvent(E);
  K.initializeEvent(E);
  EXPECT_FALSE(E.isSignaled());
  EXPECT_FALSE(K.waitForEvent(E));
  EXPECT_EQ(K.oracle().count(Violation::EventDeadlock), 1u);
}

TEST(SpinLocks, KernelForwarders) {
  Kernel K;
  SpinLock L("k");
  Irql Old = K.acquireSpinLock(L);
  EXPECT_EQ(K.irql().current(), Irql::Dispatch);
  K.releaseSpinLock(L, Old);
  EXPECT_EQ(K.irql().current(), Irql::Passive);
}

} // namespace
