//===- IrqlPagedTest.cpp - IRQL controller and paged pool -----------------===//

#include "kernel/DriverStack.h"

#include <gtest/gtest.h>

using namespace vault::kern;

namespace {

TEST(Irql, RaiseAndLower) {
  Oracle O;
  IrqlController C(O);
  EXPECT_EQ(C.current(), Irql::Passive);
  Irql Old = C.raise(Irql::Dispatch);
  EXPECT_EQ(Old, Irql::Passive);
  EXPECT_EQ(C.current(), Irql::Dispatch);
  C.lower(Old);
  EXPECT_EQ(C.current(), Irql::Passive);
  EXPECT_EQ(O.total(), 0u);
}

TEST(Irql, RaiseDownwardIsViolation) {
  Oracle O;
  IrqlController C(O);
  C.raise(Irql::Dispatch);
  C.raise(Irql::Passive);
  EXPECT_EQ(O.count(Violation::IrqlInvalidTransition), 1u);
  EXPECT_EQ(C.current(), Irql::Dispatch) << "level unchanged on violation";
}

TEST(Irql, LowerUpwardIsViolation) {
  Oracle O;
  IrqlController C(O);
  C.lower(Irql::Dirql);
  EXPECT_EQ(O.count(Violation::IrqlInvalidTransition), 1u);
}

TEST(Irql, RequireMaxLevel) {
  Oracle O;
  IrqlController C(O);
  EXPECT_TRUE(C.require(Irql::Apc, "pagedRead"));
  C.raise(Irql::Dispatch);
  EXPECT_FALSE(C.require(Irql::Apc, "pagedRead"));
  EXPECT_EQ(O.count(Violation::IrqlTooHigh), 1u);
}

TEST(PagedPool, ResidentAccessAtAnyLevel) {
  Oracle O;
  IrqlController C(O);
  PagedPool P(C, O);
  auto H = P.allocate(64, PoolType::Paged);
  P.write(H, 0, 42);
  C.raise(Irql::Dispatch);
  EXPECT_EQ(P.read(H, 0), 42) << "resident pages are safe at DISPATCH";
  EXPECT_EQ(O.total(), 0u);
  EXPECT_FALSE(P.bugchecked());
}

TEST(PagedPool, FaultServicedAtPassive) {
  Oracle O;
  IrqlController C(O);
  PagedPool P(C, O);
  auto H = P.allocate(64, PoolType::Paged);
  P.write(H, 3, 7);
  P.evict(H);
  EXPECT_FALSE(P.isResident(H));
  EXPECT_EQ(P.read(H, 3), 7) << "fault serviced, data preserved";
  EXPECT_TRUE(P.isResident(H));
  EXPECT_EQ(O.total(), 0u);
}

TEST(PagedPool, FaultAtDispatchBugchecks) {
  // The paper's §4.4 hazard: "if the data's page happens to be
  // resident, then the access is fine; otherwise, the kernel
  // deadlocks".
  Oracle O;
  IrqlController C(O);
  PagedPool P(C, O);
  auto H = P.allocate(64, PoolType::Paged);
  P.evict(H);
  C.raise(Irql::Dispatch);
  P.read(H, 0);
  EXPECT_TRUE(P.bugchecked());
  EXPECT_EQ(O.count(Violation::PagedAccessAtDispatch), 1u);
}

TEST(PagedPool, TimingDependentBug) {
  // The same code path is fine or fatal depending on memory pressure —
  // why such bugs are "very difficult to reproduce" by testing.
  auto RunWorkload = [](bool Pressure) {
    Oracle O;
    IrqlController C(O);
    PagedPool P(C, O);
    auto H = P.allocate(64, PoolType::Paged);
    if (Pressure)
      P.evictAll();
    C.raise(Irql::Dispatch);
    P.read(H, 0);
    C.lower(Irql::Passive);
    return O.count(Violation::PagedAccessAtDispatch);
  };
  EXPECT_EQ(RunWorkload(false), 0u) << "test run without pressure: passes";
  EXPECT_EQ(RunWorkload(true), 1u) << "same code under pressure: bugcheck";
}

TEST(PagedPool, NonPagedNeverEvicted) {
  Oracle O;
  IrqlController C(O);
  PagedPool P(C, O);
  auto H = P.allocate(64, PoolType::NonPaged);
  P.evictAll();
  EXPECT_TRUE(P.isResident(H));
  C.raise(Irql::Dirql);
  P.write(H, 0, 1);
  EXPECT_EQ(O.total(), 0u);
}

TEST(PagedPool, UseAfterFreeDetected) {
  Oracle O;
  IrqlController C(O);
  PagedPool P(C, O);
  auto H = P.allocate(16, PoolType::Paged);
  P.free(H);
  P.read(H, 0);
  EXPECT_EQ(O.count(Violation::UseAfterFree), 1u);
  P.free(H);
  EXPECT_EQ(O.count(Violation::UseAfterFree), 2u);
}

TEST(Oracle, ReportFormat) {
  Oracle O;
  O.record(Violation::IrpLeak, "IRP #1 lost");
  O.record(Violation::LockDoubleAcquire, "lock L");
  std::string R = O.report();
  EXPECT_NE(R.find("irp-leak"), std::string::npos);
  EXPECT_NE(R.find("lock-double-acquire"), std::string::npos);
  EXPECT_EQ(O.total(), 2u);
  O.clear();
  EXPECT_TRUE(O.clean());
}

} // namespace
