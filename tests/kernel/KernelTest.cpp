//===- KernelTest.cpp - Kernel simulator core -----------------------------===//

#include "driver/PassThroughDriver.h"
#include "kernel/DriverStack.h"

#include <gtest/gtest.h>

using namespace vault::kern;
using namespace vault::drv;

namespace {

TEST(Kernel, DeviceStackConstruction) {
  Kernel K;
  DeviceObject *Bus = K.createDevice("bus");
  DeviceObject *Mid = K.createDevice("mid");
  DeviceObject *Top = K.createDevice("top");
  K.attach(Mid, Bus);
  K.attach(Top, Mid);
  EXPECT_EQ(K.stackDepth(Top), 3u);
  EXPECT_EQ(K.stackDepth(Bus), 1u);
  EXPECT_EQ(Top->lower(), Mid);
}

TEST(Kernel, IrpAllocationSizesStack) {
  Kernel K;
  DeviceObject *Bus = K.createDevice("bus");
  DeviceObject *Top = K.createDevice("top");
  K.attach(Top, Bus);
  Irp *I = K.allocateIrp(IrpMajor::Read, Top, 512);
  EXPECT_EQ(I->stackDepth(), 2u);
  EXPECT_EQ(I->bufferSize(), 512u);
  EXPECT_EQ(I->major(), IrpMajor::Read);
}

TEST(Kernel, PassThroughStackCompletes) {
  Kernel K;
  DeviceObject *Bus = K.createDevice("bus");
  makeBusDriver(K, Bus);
  DeviceObject *Filter = K.createDevice("filter");
  makePassThroughDriver(K, Filter);
  K.attach(Filter, Bus);
  Irp *I = K.allocateIrp(IrpMajor::Pnp, Filter);
  NtStatus St = K.sendRequest(Filter, I);
  EXPECT_EQ(St, NtStatus::Success);
  EXPECT_TRUE(I->isCompleted());
  EXPECT_EQ(K.oracle().total(), 0u);
}

TEST(Kernel, MissingDispatchCompletesInvalidRequest) {
  Kernel K;
  DeviceObject *Dev = K.createDevice("bare");
  Irp *I = K.allocateIrp(IrpMajor::Read, Dev);
  EXPECT_EQ(K.sendRequest(Dev, I), NtStatus::InvalidDeviceRequest);
  EXPECT_EQ(K.oracle().total(), 0u);
}

TEST(Kernel, DoubleCompleteDetected) {
  Kernel K;
  DeviceObject *Dev = K.createDevice("dev");
  Dev->setDispatch(IrpMajor::Read, [](Kernel &Kn, DeviceObject &, Irp &I) {
    Kn.completeRequest(&I, NtStatus::Success);
    return Kn.completeRequest(&I, NtStatus::Success);
  });
  Irp *I = K.allocateIrp(IrpMajor::Read, Dev);
  K.sendRequest(Dev, I);
  EXPECT_EQ(K.oracle().count(Violation::IrpDoubleComplete), 1u);
}

TEST(Kernel, ForgottenIrpDetected) {
  Kernel K;
  DeviceObject *Dev = K.createDevice("dev");
  Dev->setDispatch(IrpMajor::Read, [](Kernel &, DeviceObject &, Irp &) {
    return DriverStatus::Pending; // Lies: never pended.
  });
  Irp *I = K.allocateIrp(IrpMajor::Read, Dev);
  K.sendRequest(Dev, I);
  EXPECT_EQ(K.oracle().count(Violation::IrpLeak), 1u);
}

TEST(Kernel, AccessWithoutOwnershipDetected) {
  Kernel K;
  DeviceObject *Dev = K.createDevice("dev");
  DeviceObject *Thief = K.createDevice("thief");
  Dev->setDispatch(IrpMajor::Read,
                   [Thief](Kernel &Kn, DeviceObject &, Irp &I) {
                     I.buffer(Thief); // Wrong owner tag.
                     return Kn.completeRequest(&I, NtStatus::Success);
                   });
  Irp *I = K.allocateIrp(IrpMajor::Read, Dev, 16);
  K.sendRequest(Dev, I);
  EXPECT_EQ(K.oracle().count(Violation::IrpAccessWithoutOwnership), 1u);
}

TEST(Kernel, CompletionRoutineRunsBottomUp) {
  Kernel K;
  DeviceObject *Bus = K.createDevice("bus");
  makeBusDriver(K, Bus);
  DeviceObject *Top = K.createDevice("top");
  std::vector<std::string> Order;
  Top->setDispatch(IrpMajor::Pnp,
                   [&Order](Kernel &Kn, DeviceObject &D, Irp &I) {
                     Kn.setCompletionRoutine(
                         &I, &D,
                         [&Order](Kernel &, DeviceObject &,
                                  Irp &) -> CompletionDisposition {
                           Order.push_back("completion");
                           return CompletionDisposition::Continue;
                         });
                     Order.push_back("dispatch");
                     return Kn.callDriver(D.lower(), &I);
                   });
  K.attach(Top, Bus);
  Irp *I = K.allocateIrp(IrpMajor::Pnp, Top);
  K.sendRequest(Top, I);
  ASSERT_EQ(Order.size(), 2u);
  EXPECT_EQ(Order[0], "dispatch");
  EXPECT_EQ(Order[1], "completion");
  EXPECT_EQ(K.stats().CompletionRoutinesRun, 1u);
}

TEST(Kernel, MoreProcessingRequiredReclaimsOwnership) {
  Kernel K;
  DeviceObject *Bus = K.createDevice("bus");
  makeBusDriver(K, Bus);
  DeviceObject *Top = K.createDevice("top");
  Top->setDispatch(IrpMajor::Pnp, [](Kernel &Kn, DeviceObject &D, Irp &I) {
    KEvent Back("back");
    Kn.initializeEvent(Back);
    Kn.setCompletionRoutine(&I, &D,
                            [&Back](Kernel &Kn2, DeviceObject &,
                                    Irp &) -> CompletionDisposition {
                              Kn2.setEvent(Back);
                              return CompletionDisposition::
                                  MoreProcessingRequired;
                            });
    Kn.callDriver(D.lower(), &I);
    EXPECT_TRUE(Kn.waitForEvent(Back));
    EXPECT_FALSE(I.isCompleted()) << "ownership reclaimed";
    return Kn.completeRequest(&I, NtStatus::Success);
  });
  K.attach(Top, Bus);
  Irp *I = K.allocateIrp(IrpMajor::Pnp, Top);
  EXPECT_EQ(K.sendRequest(Top, I), NtStatus::Success);
  EXPECT_TRUE(I->isCompleted());
  EXPECT_EQ(K.oracle().total(), 0u);
}

TEST(Kernel, EventDeadlockDetected) {
  Kernel K;
  KEvent Never("never");
  K.initializeEvent(Never);
  EXPECT_FALSE(K.waitForEvent(Never));
  EXPECT_EQ(K.oracle().count(Violation::EventDeadlock), 1u);
}

TEST(Kernel, WorkQueueRunsDeferredWork) {
  Kernel K;
  int Ran = 0;
  K.queueWorkItem([&Ran](Kernel &) { ++Ran; });
  K.queueWorkItem([&Ran](Kernel &) { ++Ran; });
  EXPECT_EQ(K.pendingWork(), 2u);
  EXPECT_EQ(K.runAllWork(), 2u);
  EXPECT_EQ(Ran, 2);
  EXPECT_FALSE(K.runOneWorkItem());
}

TEST(Kernel, IrpLeakReportAtTeardown) {
  Kernel K;
  DeviceObject *Dev = K.createDevice("dev");
  Dev->setDispatch(IrpMajor::Read, [](Kernel &Kn, DeviceObject &, Irp &I) {
    return Kn.markIrpPending(&I); // Pended but never completed.
  });
  Irp *I = K.allocateIrp(IrpMajor::Read, Dev);
  EXPECT_EQ(K.sendRequest(Dev, I), NtStatus::Pending);
  EXPECT_EQ(K.reportIrpLeaks(), 1u);
}

TEST(Kernel, CallDriverWithNoLowerDevice) {
  Kernel K;
  DeviceObject *Dev = K.createDevice("lonely");
  Dev->setDispatch(IrpMajor::Read, [](Kernel &Kn, DeviceObject &D, Irp &I) {
    return Kn.callDriver(D.lower(), &I); // No lower device.
  });
  Irp *I = K.allocateIrp(IrpMajor::Read, Dev);
  EXPECT_EQ(K.sendRequest(Dev, I), NtStatus::NoSuchDevice);
  EXPECT_GE(K.oracle().total(), 1u);
}

} // namespace
