//===- SocketTest.cpp - In-memory socket substrate ------------------------===//

#include "sockets/Socket.h"

#include <gtest/gtest.h>

using namespace vault::net;

namespace {

TEST(Sockets, ProtocolHappyPath) {
  SocketWorld W;
  auto S = W.socketCreate();
  EXPECT_EQ(W.stateOf(S), SockState::Raw);
  EXPECT_EQ(W.bind(S, 80), SockError::Ok);
  EXPECT_EQ(W.stateOf(S), SockState::Named);
  EXPECT_EQ(W.listen(S, 4), SockError::Ok);
  EXPECT_EQ(W.stateOf(S), SockState::Listening);

  auto Client = W.socketCreate();
  EXPECT_EQ(W.connect(Client, 80), SockError::Ok);
  SocketWorld::Handle Conn = 0;
  EXPECT_EQ(W.accept(S, Conn), SockError::Ok);
  EXPECT_EQ(W.stateOf(Conn), SockState::Ready);

  EXPECT_EQ(W.send(Client, {1, 2, 3}), SockError::Ok);
  std::vector<uint8_t> Buf;
  EXPECT_EQ(W.receive(Conn, Buf), SockError::Ok);
  EXPECT_EQ(Buf, (std::vector<uint8_t>{1, 2, 3}));

  EXPECT_EQ(W.close(Client), SockError::Ok);
  EXPECT_EQ(W.close(Conn), SockError::Ok);
  EXPECT_EQ(W.close(S), SockError::Ok);
  EXPECT_EQ(W.violationCount(), 0u);
  EXPECT_TRUE(W.leakedSockets().empty());
}

TEST(Sockets, BidirectionalTraffic) {
  SocketWorld W;
  auto S = W.socketCreate();
  W.bind(S, 1000);
  W.listen(S, 1);
  auto Client = W.socketCreate();
  W.connect(Client, 1000);
  SocketWorld::Handle Conn = 0;
  W.accept(S, Conn);
  W.send(Conn, {9});
  std::vector<uint8_t> Buf;
  EXPECT_EQ(W.receive(Client, Buf), SockError::Ok);
  EXPECT_EQ(Buf, std::vector<uint8_t>{9});
}

TEST(Sockets, ListenWithoutBindIsViolation) {
  SocketWorld W;
  auto S = W.socketCreate();
  EXPECT_EQ(W.listen(S, 4), SockError::WrongState);
  EXPECT_EQ(W.violationCount(), 1u);
  EXPECT_FALSE(W.violationLog().empty());
}

TEST(Sockets, ReceiveOnRawIsViolation) {
  SocketWorld W;
  auto S = W.socketCreate();
  std::vector<uint8_t> Buf;
  EXPECT_EQ(W.receive(S, Buf), SockError::WrongState);
  EXPECT_EQ(W.violationCount(), 1u);
}

TEST(Sockets, AddrInUseIsEnvironmentalNotProtocol) {
  SocketWorld W;
  auto A = W.socketCreate();
  auto B = W.socketCreate();
  EXPECT_EQ(W.bind(A, 80), SockError::Ok);
  EXPECT_EQ(W.bind(B, 80), SockError::AddrInUse);
  EXPECT_EQ(W.violationCount(), 0u) << "failure, but not a protocol bug";
  EXPECT_EQ(W.stateOf(B), SockState::Raw) << "B can retry another port";
  EXPECT_EQ(W.bind(B, 81), SockError::Ok);
}

TEST(Sockets, PortFreedOnClose) {
  SocketWorld W;
  auto A = W.socketCreate();
  W.bind(A, 80);
  W.close(A);
  auto B = W.socketCreate();
  EXPECT_EQ(W.bind(B, 80), SockError::Ok);
}

TEST(Sockets, AcceptWouldBlockWithNoPending) {
  SocketWorld W;
  auto S = W.socketCreate();
  W.bind(S, 80);
  W.listen(S, 4);
  SocketWorld::Handle Conn = 0;
  EXPECT_EQ(W.accept(S, Conn), SockError::WouldBlock);
  EXPECT_EQ(W.violationCount(), 0u);
}

TEST(Sockets, BacklogLimit) {
  SocketWorld W;
  auto S = W.socketCreate();
  W.bind(S, 80);
  W.listen(S, 1);
  auto C1 = W.socketCreate();
  auto C2 = W.socketCreate();
  EXPECT_EQ(W.connect(C1, 80), SockError::Ok);
  EXPECT_EQ(W.connect(C2, 80), SockError::WouldBlock);
}

TEST(Sockets, DoubleCloseIsViolation) {
  SocketWorld W;
  auto S = W.socketCreate();
  EXPECT_EQ(W.close(S), SockError::Ok);
  EXPECT_EQ(W.close(S), SockError::WrongState);
  EXPECT_EQ(W.violationCount(), 1u);
}

TEST(Sockets, SendToClosedPeer) {
  SocketWorld W;
  auto S = W.socketCreate();
  W.bind(S, 80);
  W.listen(S, 4);
  auto Client = W.socketCreate();
  W.connect(Client, 80);
  SocketWorld::Handle Conn = 0;
  W.accept(S, Conn);
  W.close(Client);
  EXPECT_EQ(W.send(Conn, {1}), SockError::NotConnected);
}

TEST(Sockets, LeakReporting) {
  SocketWorld W;
  auto A = W.socketCreate();
  auto B = W.socketCreate();
  W.close(A);
  auto Leaked = W.leakedSockets();
  ASSERT_EQ(Leaked.size(), 1u);
  EXPECT_EQ(Leaked[0], B);
  EXPECT_EQ(W.liveCount(), 1u);
}

TEST(Sockets, ConnectToUnboundPortFails) {
  SocketWorld W;
  auto C = W.socketCreate();
  EXPECT_EQ(W.connect(C, 9999), SockError::NotConnected);
}

TEST(Sockets, StateNamesComplete) {
  EXPECT_STREQ(sockStateName(SockState::Raw), "raw");
  EXPECT_STREQ(sockStateName(SockState::Named), "named");
  EXPECT_STREQ(sockStateName(SockState::Listening), "listening");
  EXPECT_STREQ(sockStateName(SockState::Ready), "ready");
  EXPECT_STREQ(sockStateName(SockState::Closed), "closed");
  EXPECT_STREQ(sockErrorName(SockError::WouldBlock), "would-block");
}

} // namespace
