//===- RegressTest.cpp - Fuzz reproducer regression harness ---------------===//
//
// Re-checks every committed reproducer under tests/regress/ against
// the verdict recorded in its `//!fuzz-expect:` header. Reproducers
// are written by the vaultfuzz reducer (and occasionally curated by
// hand); once committed, the checker must keep producing the labeled
// verdict — byte-identically at any job count.
//
// Header grammar (all lines optional except fuzz-expect):
//   //!fuzz-oracle: parity|determinism|roundtrip|vm
//   //!fuzz-class:  <classification>
//   //!fuzz-origin: seed=N program=NAME [mutation=K site=S]
//   //!fuzz-expect: accept
//   //!fuzz-expect: reject <diag-name>...
//
//===----------------------------------------------------------------------===//

#include "sema/Checker.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>

using namespace vault;

namespace fs = std::filesystem;

namespace {

std::optional<DiagId> diagIdByName(const std::string &Name) {
  for (unsigned I = 0; I != static_cast<unsigned>(DiagId::NumDiags); ++I)
    if (Name == diagName(static_cast<DiagId>(I)))
      return static_cast<DiagId>(I);
  return std::nullopt;
}

struct Reproducer {
  std::string Path;
  std::string Text;
  bool ExpectAccept = false;
  std::set<DiagId> ExpectIds;
};

std::vector<Reproducer> loadReproducers() {
  std::vector<Reproducer> Out;
  std::vector<fs::path> Paths;
  for (const auto &E : fs::directory_iterator(VAULT_REGRESS_DIR))
    if (E.path().extension() == ".vlt")
      Paths.push_back(E.path());
  std::sort(Paths.begin(), Paths.end());
  for (const fs::path &P : Paths) {
    std::ifstream In(P, std::ios::binary);
    std::stringstream Buf;
    Buf << In.rdbuf();
    Reproducer R;
    R.Path = P.string();
    R.Text = Buf.str();
    Out.push_back(std::move(R));
  }
  return Out;
}

/// Parses the //!fuzz-expect header; fails the test on a malformed one
/// so a bad commit is caught by the harness itself.
bool parseExpect(Reproducer &R) {
  std::istringstream Lines(R.Text);
  std::string Line;
  while (std::getline(Lines, Line)) {
    if (Line.rfind("//!fuzz-expect:", 0) != 0)
      continue;
    std::istringstream Fields(Line.substr(std::string("//!fuzz-expect:").size()));
    std::string Verdict;
    Fields >> Verdict;
    if (Verdict == "accept") {
      R.ExpectAccept = true;
      return true;
    }
    if (Verdict != "reject")
      return false;
    std::string Name;
    while (Fields >> Name) {
      std::optional<DiagId> Id = diagIdByName(Name);
      if (!Id)
        return false;
      R.ExpectIds.insert(*Id);
    }
    return !R.ExpectIds.empty();
  }
  return false;
}

std::string checkSignature(const Reproducer &R, unsigned Jobs, bool &Accept,
                           std::set<DiagId> &ErrorIds) {
  VaultCompiler C;
  C.setJobs(Jobs);
  C.addSource(fs::path(R.Path).filename().string(), R.Text);
  Accept = C.check();
  for (const Diagnostic &D : C.diags().diagnostics())
    if (D.Severity == DiagSeverity::Error)
      ErrorIds.insert(D.Id);
  return C.diags().render();
}

TEST(FuzzRegress, CorpusIsNonEmpty) {
  // The harness only means something with committed reproducers in it;
  // the tree ships with curated generator pins at minimum.
  EXPECT_GE(loadReproducers().size(), 3u);
}

TEST(FuzzRegress, EveryReproducerMatchesItsLabel) {
  for (Reproducer &R : loadReproducers()) {
    ASSERT_TRUE(parseExpect(R)) << R.Path << ": missing or malformed "
                                << "//!fuzz-expect header";
    bool Accept = false;
    std::set<DiagId> Ids;
    std::string Render = checkSignature(R, 1, Accept, Ids);
    EXPECT_EQ(Accept, R.ExpectAccept) << R.Path << "\n" << Render;
    if (!R.ExpectAccept && Accept == false) {
      std::string Got, Want;
      for (DiagId Id : Ids)
        Got += std::string(diagName(Id)) + " ";
      for (DiagId Id : R.ExpectIds)
        Want += std::string(diagName(Id)) + " ";
      EXPECT_EQ(Ids, R.ExpectIds)
          << R.Path << ": labeled [" << Want << "] got [" << Got << "]\n"
          << Render;
    }
  }
}

TEST(FuzzRegress, DiagnosticsAreJobCountInvariant) {
  for (Reproducer &R : loadReproducers()) {
    bool A1 = false, A4 = false;
    std::set<DiagId> I1, I4;
    std::string S1 = checkSignature(R, 1, A1, I1);
    std::string S4 = checkSignature(R, 4, A4, I4);
    EXPECT_EQ(S1, S4) << R.Path;
    EXPECT_EQ(A1, A4) << R.Path;
  }
}

} // namespace
