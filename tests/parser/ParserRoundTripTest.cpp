//===- ParserRoundTripTest.cpp --------------------------------------------===//
//
// Property: pretty-printing a parsed program and re-parsing the output
// yields a program that pretty-prints identically (print∘parse is a
// fixpoint after one iteration). Exercised over every corpus program.
//
//===----------------------------------------------------------------------===//

#include "ast/AstPrinter.h"
#include "corpus/Corpus.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace vault;

namespace {

std::string parseAndPrint(const std::string &Text, bool &Ok) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  AstContext Ctx;
  Ok = Parser::parseString(Ctx, SM, Diags, "rt.vlt", Text);
  AstPrinter P;
  return P.print(Ctx.program());
}

class RoundTrip : public ::testing::TestWithParam<corpus::ProgramInfo> {};

TEST_P(RoundTrip, PrintParsePrintIsStable) {
  std::string Source = corpus::load(GetParam().Name);
  ASSERT_FALSE(Source.empty()) << "cannot load " << GetParam().Name;

  bool Ok1 = false, Ok2 = false;
  std::string Once = parseAndPrint(Source, Ok1);
  ASSERT_TRUE(Ok1) << "original does not parse";
  std::string Twice = parseAndPrint(Once, Ok2);
  ASSERT_TRUE(Ok2) << "printed output does not re-parse:\n" << Once;
  EXPECT_EQ(Once, Twice);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RoundTrip, ::testing::ValuesIn(corpus::index()),
    [](const ::testing::TestParamInfo<corpus::ProgramInfo> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

} // namespace
