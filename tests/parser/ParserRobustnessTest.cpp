//===- ParserRobustnessTest.cpp - No crash on mangled input ---------------===//
//
// Deterministic fuzz-lite: the front end must never crash, hang, or
// loop on damaged input — it must report diagnostics and terminate.
// Mutations are seeded deterministically from corpus programs.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "sema/Checker.h"

#include <gtest/gtest.h>

#include <random>

using namespace vault;

namespace {

/// A cheap deterministic PRNG (avoid platform-dependent distributions).
struct Rng {
  uint64_t State;
  explicit Rng(uint64_t Seed) : State(Seed * 2654435761u + 1) {}
  uint64_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  }
  size_t below(size_t N) { return N ? next() % N : 0; }
};

std::string mutate(std::string Text, Rng &R, unsigned Edits) {
  static const char *Tokens[] = {"tracked", "[-K]", "'Ctor", "@", "<",  ">",
                                 "{",       "}",    "(",     ")", ";",  ":",
                                 "key",     "new",  "free",  "|", "->", "%"};
  for (unsigned I = 0; I != Edits && !Text.empty(); ++I) {
    switch (R.below(4)) {
    case 0: // Delete a span.
    {
      size_t Pos = R.below(Text.size());
      size_t Len = 1 + R.below(8);
      Text.erase(Pos, std::min(Len, Text.size() - Pos));
      break;
    }
    case 1: // Insert a token.
    {
      size_t Pos = R.below(Text.size());
      Text.insert(Pos, Tokens[R.below(std::size(Tokens))]);
      break;
    }
    case 2: // Flip a character.
    {
      size_t Pos = R.below(Text.size());
      Text[Pos] = static_cast<char>(' ' + R.below(94));
      break;
    }
    case 3: // Duplicate a span.
    {
      size_t Pos = R.below(Text.size());
      size_t Len = std::min<size_t>(1 + R.below(16), Text.size() - Pos);
      Text.insert(Pos, Text.substr(Pos, Len));
      break;
    }
    }
  }
  return Text;
}

class ParserRobustness : public ::testing::TestWithParam<int> {};

TEST_P(ParserRobustness, MutatedCorpusNeverCrashes) {
  Rng R(static_cast<uint64_t>(GetParam()));
  const auto &Index = corpus::index();
  const auto &Program = Index[R.below(Index.size())];
  std::string Text = corpus::load(Program.Name);
  ASSERT_FALSE(Text.empty());
  for (unsigned Round = 0; Round != 8; ++Round) {
    std::string Mangled = mutate(Text, R, 1 + Round * 3);
    VaultCompiler C;
    C.addSource("fuzz.vlt", Mangled);
    // Must terminate; verdict and diagnostics are irrelevant.
    (void)C.check();
    SUCCEED();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustness, ::testing::Range(0, 24));

TEST(ParserRobustness, TruncationsOfTheDriver) {
  // Every prefix-truncation of the largest program must terminate.
  std::string Text = corpus::load("driver/floppy");
  ASSERT_FALSE(Text.empty());
  for (size_t Cut = 0; Cut < Text.size(); Cut += 97) {
    VaultCompiler C;
    C.addSource("trunc.vlt", Text.substr(0, Cut));
    (void)C.check();
  }
  SUCCEED();
}

TEST(ParserRobustness, PathologicalNesting) {
  // Deep parenthesis/brace nesting must not blow the stack at sane
  // depths.
  std::string Expr = "1";
  for (int I = 0; I != 200; ++I)
    Expr = "(" + Expr + " + 1)";
  VaultCompiler C;
  C.addSource("deep.vlt", "void f() { int x = " + Expr + "; }");
  EXPECT_TRUE(C.check()) << C.diags().render();
}

TEST(ParserRobustness, UnterminatedBlockCommentAtEof) {
  // The comment swallows the rest of the buffer; the lexer must
  // diagnose it rather than scan past the end or hang.
  VaultCompiler C;
  C.addSource("cmt.vlt", "void f() { int x = 1; } /* trailing");
  EXPECT_FALSE(C.check());
  EXPECT_TRUE(C.diags().has(DiagId::LexUnterminatedComment))
      << C.diags().render();
}

TEST(ParserRobustness, LoneTickBeforeEof) {
  // `'` introduces a constructor tag only when a letter follows; a
  // bare tick as the last byte must be a clean diagnostic.
  for (const char *Text : {"'", "void f() { int x = 1; } '",
                           "variant v [ 'A | ' "}) {
    VaultCompiler C;
    C.addSource("tick.vlt", Text);
    EXPECT_FALSE(C.check()) << Text;
    EXPECT_FALSE(C.diags().diagnostics().empty()) << Text;
  }
}

TEST(ParserRobustness, CrOnlyLineEndingsInStrings) {
  // Classic-Mac CR-only line endings: the CR terminates the line, so
  // an unterminated string before it must be reported with sane line
  // numbers, and a CR between tokens is plain whitespace.
  VaultCompiler C;
  C.addSource("cr.vlt",
              "void f() {\r  print(\"unterminated\r}\rvoid g() { }\r");
  EXPECT_FALSE(C.check());
  EXPECT_TRUE(C.diags().has(DiagId::LexUnterminatedString))
      << C.diags().render();

  VaultCompiler C2;
  C2.addSource("cr_ok.vlt",
               "void print(string s);\rvoid f() {\r  print(\"ok\");\r}\r");
  EXPECT_TRUE(C2.check()) << C2.diags().render();
}

TEST(ParserRobustness, DepthGuardRejectsExtremeNesting) {
  // Beyond the parser's recursion budget the answer is a diagnostic,
  // not a blown stack. 20k levels would need megabytes of stack
  // through the precedence chain without the guard.
  std::string Expr = "1";
  for (int I = 0; I != 20000; ++I)
    Expr = "(" + Expr + ")";
  VaultCompiler C;
  C.addSource("deep2.vlt", "void f() { int x = " + Expr + "; }");
  EXPECT_FALSE(C.check());
  EXPECT_TRUE(C.diags().has(DiagId::ParseTooDeep)) << "guard did not fire";
}

TEST(ParserRobustness, DepthGuardRejectsDeepStatementNesting) {
  std::string Body;
  for (int I = 0; I != 20000; ++I)
    Body += "if (1 < 2) { ";
  Body += "int x = 1;";
  for (int I = 0; I != 20000; ++I)
    Body += " }";
  VaultCompiler C;
  C.addSource("deepstmt.vlt", "void f() { " + Body + " }");
  EXPECT_FALSE(C.check());
  EXPECT_TRUE(C.diags().has(DiagId::ParseTooDeep));
}

TEST(ParserRobustness, GarbageBytes) {
  std::string Garbage;
  Rng R(1234);
  for (int I = 0; I != 4096; ++I)
    Garbage += static_cast<char>(R.below(256));
  VaultCompiler C;
  C.addSource("garbage.vlt", Garbage);
  (void)C.check();
  SUCCEED();
}

} // namespace
