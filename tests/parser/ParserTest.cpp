//===- ParserTest.cpp -----------------------------------------------------===//

#include "ast/AstPrinter.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace vault;

namespace {

struct Parsed {
  std::unique_ptr<SourceManager> SM;
  std::unique_ptr<DiagnosticEngine> Diags;
  std::unique_ptr<AstContext> Ctx;
  bool Ok = false;
};

Parsed parse(const std::string &Text) {
  Parsed P;
  P.SM = std::make_unique<SourceManager>();
  P.Diags = std::make_unique<DiagnosticEngine>(*P.SM);
  P.Ctx = std::make_unique<AstContext>();
  P.Ok = Parser::parseString(*P.Ctx, *P.SM, *P.Diags, "p.vlt", Text);
  return P;
}

TEST(Parser, EmptyProgram) {
  auto P = parse("");
  EXPECT_TRUE(P.Ok);
  EXPECT_TRUE(P.Ctx->program().Decls.empty());
}

TEST(Parser, FunctionPrototype) {
  auto P = parse("void fclose(tracked(F) FILE f) [-F];");
  ASSERT_TRUE(P.Ok) << P.Diags->render();
  ASSERT_EQ(P.Ctx->program().Decls.size(), 1u);
  const auto *F = dyn_cast<FuncDecl>(P.Ctx->program().Decls[0]);
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(F->isPrototype());
  EXPECT_EQ(F->params().size(), 1u);
  EXPECT_TRUE(F->effect().Present);
  ASSERT_EQ(F->effect().Items.size(), 1u);
  EXPECT_EQ(F->effect().Items[0].M, EffectItemAst::Mode::Consume);
  EXPECT_EQ(F->effect().Items[0].KeyName, "F");
}

TEST(Parser, EffectShorthands) {
  auto P = parse("void f(tracked(K) T x) [K@a];"
                 "void g(tracked(K) T x) [K@a->b];"
                 "void h() [+K@b];"
                 "void i() [new K@b];");
  ASSERT_TRUE(P.Ok) << P.Diags->render();
  const auto *F = cast<FuncDecl>(P.Ctx->program().Decls[0]);
  ASSERT_EQ(F->effect().Items.size(), 1u);
  EXPECT_EQ(F->effect().Items[0].M, EffectItemAst::Mode::Keep);
  ASSERT_TRUE(F->effect().Items[0].Post.has_value());
  EXPECT_EQ(*F->effect().Items[0].Post, "a"); // [K@a] == [K@a->a]
  const auto *G = cast<FuncDecl>(P.Ctx->program().Decls[1]);
  EXPECT_EQ(*G->effect().Items[0].Post, "b");
  const auto *H = cast<FuncDecl>(P.Ctx->program().Decls[2]);
  EXPECT_EQ(H->effect().Items[0].M, EffectItemAst::Mode::Produce);
  const auto *I = cast<FuncDecl>(P.Ctx->program().Decls[3]);
  EXPECT_EQ(I->effect().Items[0].M, EffectItemAst::Mode::Fresh);
}

TEST(Parser, BoundedStateVariable) {
  auto P = parse(
      "int f() [IRQL @ (level <= DISPATCH_LEVEL) -> DISPATCH_LEVEL];");
  ASSERT_TRUE(P.Ok) << P.Diags->render();
  const auto *F = cast<FuncDecl>(P.Ctx->program().Decls[0]);
  ASSERT_EQ(F->effect().Items.size(), 1u);
  const EffectItemAst &I = F->effect().Items[0];
  ASSERT_TRUE(I.Pre.has_value());
  EXPECT_EQ(I.Pre->K, StateExprAst::Kind::BoundedVar);
  EXPECT_EQ(I.Pre->Name, "level");
  EXPECT_EQ(I.Pre->Bound, "DISPATCH_LEVEL");
  EXPECT_EQ(*I.Post, "DISPATCH_LEVEL");
}

TEST(Parser, GuardedLocalDecl) {
  auto P = parse("void f() { K:FILE input; }");
  ASSERT_TRUE(P.Ok) << P.Diags->render();
  const auto *F = cast<FuncDecl>(P.Ctx->program().Decls[0]);
  ASSERT_EQ(F->body()->stmts().size(), 1u);
  const auto *DS = dyn_cast<DeclStmt>(F->body()->stmts()[0]);
  ASSERT_NE(DS, nullptr);
  const auto *V = cast<VarDecl>(DS->decl());
  const auto *G = dyn_cast<GuardedTypeExpr>(V->typeExpr());
  ASSERT_NE(G, nullptr);
  EXPECT_EQ(G->guards().size(), 1u);
  EXPECT_EQ(G->guards()[0].KeyName, "K");
}

TEST(Parser, GuardWithState) {
  auto P = parse("void f() { K@open:FILE input; }");
  ASSERT_TRUE(P.Ok) << P.Diags->render();
}

TEST(Parser, DeclVsExpressionAmbiguity) {
  // `a < b;` is an expression, not a malformed generic declaration.
  auto P = parse("void f(int a, int b) { a < b; a * b - 1; }");
  ASSERT_TRUE(P.Ok) << P.Diags->render();
  const auto *F = cast<FuncDecl>(P.Ctx->program().Decls[0]);
  EXPECT_EQ(F->body()->stmts().size(), 2u);
  EXPECT_TRUE(isa<ExprStmt>(F->body()->stmts()[0]));
}

TEST(Parser, GenericTypeLocal) {
  auto P = parse("void f(tracked(I) IRP irp) { KEVENT<I> ev = mk(irp); }");
  ASSERT_TRUE(P.Ok) << P.Diags->render();
}

TEST(Parser, VariantDeclaration) {
  auto P = parse(
      "variant status<key K> [ 'Ok {K@named} | 'Error(int) {K@raw} ];");
  ASSERT_TRUE(P.Ok) << P.Diags->render();
  const auto *V = cast<VariantDecl>(P.Ctx->program().Decls[0]);
  ASSERT_EQ(V->ctors().size(), 2u);
  EXPECT_EQ(V->ctors()[0].Name, "Ok");
  EXPECT_TRUE(V->ctors()[0].Payload.empty());
  ASSERT_EQ(V->ctors()[0].KeyAttachments.size(), 1u);
  EXPECT_EQ(V->ctors()[0].KeyAttachments[0].KeyName, "K");
  ASSERT_TRUE(V->ctors()[0].KeyAttachments[0].State.has_value());
  EXPECT_EQ(V->ctors()[0].KeyAttachments[0].State->Name, "named");
  EXPECT_EQ(V->ctors()[1].Payload.size(), 1u);
}

TEST(Parser, RecursiveVariant) {
  auto P = parse(
      "variant reglist [ 'Nil | 'Cons(tracked region, tracked reglist) ];");
  ASSERT_TRUE(P.Ok) << P.Diags->render();
}

TEST(Parser, StatesetChain) {
  auto P = parse("stateset IRQ = [ A < B < C < D ];");
  ASSERT_TRUE(P.Ok) << P.Diags->render();
  const auto *S = cast<StatesetDecl>(P.Ctx->program().Decls[0]);
  EXPECT_EQ(S->ranks().size(), 4u);
}

TEST(Parser, StatesetRanks) {
  auto P = parse("stateset S = [ a, b < c ];");
  ASSERT_TRUE(P.Ok) << P.Diags->render();
  const auto *S = cast<StatesetDecl>(P.Ctx->program().Decls[0]);
  ASSERT_EQ(S->ranks().size(), 2u);
  EXPECT_EQ(S->ranks()[0].size(), 2u);
}

TEST(Parser, GlobalKey) {
  auto P = parse("key IRQL @ IRQ_LEVEL;");
  ASSERT_TRUE(P.Ok) << P.Diags->render();
  const auto *K = cast<KeyDecl>(P.Ctx->program().Decls[0]);
  EXPECT_EQ(K->statesetName(), "IRQ_LEVEL");
}

TEST(Parser, InterfaceAndModule) {
  auto P = parse("interface REGION { type region; "
                 "tracked(R) region create() [new R]; } "
                 "extern module Region : REGION;");
  ASSERT_TRUE(P.Ok) << P.Diags->render();
  ASSERT_EQ(P.Ctx->program().Decls.size(), 2u);
  EXPECT_TRUE(isa<InterfaceDecl>(P.Ctx->program().Decls[0]));
  EXPECT_TRUE(isa<ModuleDecl>(P.Ctx->program().Decls[1]));
}

TEST(Parser, FunctionTypeAlias) {
  auto P = parse(
      "type CR<key K> = tracked RESULT<K> Routine(DEV, tracked(K) IRP) [-K];");
  ASSERT_TRUE(P.Ok) << P.Diags->render();
  const auto *A = cast<TypeAliasDecl>(P.Ctx->program().Decls[0]);
  EXPECT_TRUE(isa<FuncTypeExpr>(A->underlying()));
}

TEST(Parser, NewExpressions) {
  auto P = parse("void f() {"
                 "  tracked(K) point p = new tracked point {x=3; y=4;};"
                 "  R:point q = new(rgn) point {x=1;};"
                 "}");
  ASSERT_TRUE(P.Ok) << P.Diags->render();
}

TEST(Parser, CtorWithKeyBraces) {
  auto P = parse("void f() { flag = 'SomeKey{F}; g = 'Error(3); h = 'Nil; }");
  ASSERT_TRUE(P.Ok) << P.Diags->render();
}

TEST(Parser, SwitchWithPatterns) {
  auto P = parse("void f(opt o) { switch (o) {"
                 "  case 'None: return;"
                 "  case 'Some(x, _): x++;"
                 "  default: return;"
                 "} }");
  ASSERT_TRUE(P.Ok) << P.Diags->render();
  const auto *F = cast<FuncDecl>(P.Ctx->program().Decls[0]);
  const auto *Sw = cast<SwitchStmt>(F->body()->stmts()[0]);
  ASSERT_EQ(Sw->cases().size(), 3u);
  EXPECT_EQ(Sw->cases()[1].Pattern.Binders.size(), 2u);
  EXPECT_EQ(Sw->cases()[1].Pattern.Binders[1], ""); // wildcard
  EXPECT_TRUE(Sw->cases()[2].Pattern.IsDefault);
}

TEST(Parser, NestedFunction) {
  auto P = parse("int outer(tracked(I) IRP irp) [-I] {"
                 "  int helper(int x) { return x + 1; }"
                 "  return helper(1);"
                 "}");
  ASSERT_TRUE(P.Ok) << P.Diags->render();
}

TEST(Parser, FreeStatement) {
  auto P = parse("void f(tracked(K) point p) [-K] { free(p); }");
  ASSERT_TRUE(P.Ok) << P.Diags->render();
  const auto *F = cast<FuncDecl>(P.Ctx->program().Decls[0]);
  EXPECT_TRUE(isa<FreeStmt>(F->body()->stmts()[0]));
}

TEST(Parser, TupleTypeAlias) {
  auto P = parse("type pair = (tracked(R) region, R:point);");
  ASSERT_TRUE(P.Ok) << P.Diags->render();
}

TEST(Parser, OperatorPrecedence) {
  auto P = parse("void f(int a, int b, int c) { x = a + b * c == a && b < c; }");
  ASSERT_TRUE(P.Ok) << P.Diags->render();
  AstPrinter Pr;
  std::string S = Pr.print(P.Ctx->program().Decls[0]);
  EXPECT_NE(S.find("((a + (b * c)) == a) && (b < c)"), std::string::npos) << S;
}

TEST(Parser, ErrorRecovery) {
  // A bad declaration should not prevent later declarations from
  // parsing.
  auto P = parse("void broken( ; void good() { return; }");
  EXPECT_FALSE(P.Ok);
  bool FoundGood = false;
  for (const Decl *D : P.Ctx->program().Decls)
    if (D->name() == "good")
      FoundGood = true;
  EXPECT_TRUE(FoundGood);
}

TEST(Parser, MissingSemicolonDiagnosed) {
  auto P = parse("void f() { return }");
  EXPECT_FALSE(P.Ok);
  // `return }` errors at the expression position.
  EXPECT_TRUE(P.Diags->has(DiagId::ParseExpected) ||
              P.Diags->has(DiagId::ParseUnexpectedToken));
  auto P2 = parse("void f() { int a = 1 }");
  EXPECT_FALSE(P2.Ok);
}

TEST(Parser, ArrayTypes) {
  auto P = parse("void receive(tracked(S) sock s, byte[] data) [S@ready];");
  ASSERT_TRUE(P.Ok) << P.Diags->render();
  const auto *F = cast<FuncDecl>(P.Ctx->program().Decls[0]);
  EXPECT_TRUE(isa<ArrayTypeExpr>(F->params()[1].Type));
}

TEST(Parser, TrackedWithInitialState) {
  auto P = parse("tracked(@raw) sock socket(int d);");
  ASSERT_TRUE(P.Ok) << P.Diags->render();
  const auto *F = cast<FuncDecl>(P.Ctx->program().Decls[0]);
  const auto *T = cast<TrackedTypeExpr>(F->retType());
  ASSERT_TRUE(T->initialState().has_value());
  EXPECT_EQ(T->initialState()->Name, "raw");
}

} // namespace
