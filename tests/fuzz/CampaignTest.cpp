//===- CampaignTest.cpp - Campaign driver behavior ------------------------===//

#include "fuzz/Campaign.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

using namespace vault;
using namespace vault::fuzz;

namespace fs = std::filesystem;

namespace {

CampaignOptions smallCampaign(uint64_t Seed) {
  CampaignOptions Opts;
  Opts.Seed = Seed;
  Opts.Count = 6;
  Opts.Mutate = true;
  Opts.Reduce = false;
  Opts.RunRoundtrip = false; // Keep unit tests compiler-independent.
  Opts.TmpDir = (fs::temp_directory_path() / "vault-campaign-test").string();
  return Opts;
}

TEST(FuzzCampaign, SmallCampaignPasses) {
  CampaignResult R = runCampaign(smallCampaign(101));
  EXPECT_TRUE(R.Pass) << R.Report;
  EXPECT_EQ(R.Generated, 6u);
  EXPECT_EQ(R.Mutants, 6u);
  EXPECT_EQ(R.violations(), 0u) << R.Report;
  EXPECT_GE(R.detectPct(), 95.0) << R.Report;
}

TEST(FuzzCampaign, ReportIsDeterministic) {
  CampaignResult A = runCampaign(smallCampaign(55));
  CampaignResult B = runCampaign(smallCampaign(55));
  EXPECT_EQ(A.Report, B.Report);
}

TEST(FuzzCampaign, MetricsAndSpansAreRecorded) {
  Metrics M;
  Tracer T;
  CampaignResult R = runCampaign(smallCampaign(7), &M, &T);
  EXPECT_EQ(M.value("fuzz.programs.generated"), 6u);
  EXPECT_EQ(M.value("fuzz.programs.mutated"), 6u);
  EXPECT_EQ(M.value("fuzz.mutants.detected") + M.value("fuzz.mutants.missed"),
            6u);
  EXPECT_GT(M.value("fuzz.oracle.parity.ok") +
                M.value("fuzz.oracle.parity.classified"),
            0u);
  EXPECT_EQ(M.value("fuzz.pass"), R.Pass ? 1u : 0u);
  const Metrics::Histogram *H = M.findHistogram("fuzz.program.bytes");
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(H->Count, 6u);
  // Spans: one campaign, one generate per program, oracle spans.
  std::string Json = T.json();
  EXPECT_NE(Json.find("fuzz.campaign"), std::string::npos);
  EXPECT_NE(Json.find("fuzz.generate"), std::string::npos);
  EXPECT_NE(Json.find("fuzz.mutate"), std::string::npos);
  EXPECT_NE(Json.find("fuzz.oracle.parity"), std::string::npos);
}

TEST(FuzzCampaign, EmitDirReceivesEveryProgram) {
  CampaignOptions Opts = smallCampaign(9);
  Opts.Count = 3;
  Opts.EmitDir =
      (fs::temp_directory_path() / "vault-campaign-emit").string();
  std::error_code EC;
  fs::remove_all(Opts.EmitDir, EC);
  runCampaign(Opts);
  unsigned Files = 0;
  for (const auto &E : fs::directory_iterator(Opts.EmitDir))
    if (E.path().extension() == ".vlt")
      ++Files;
  EXPECT_EQ(Files, 6u); // 3 clean + 3 mutants.
  fs::remove_all(Opts.EmitDir, EC);
}

TEST(FuzzCampaign, ReproducerHeaderRoundTrips) {
  // renderReproducer must produce the //!fuzz-* headers the regress
  // harness consumes, with the expect line matching a fresh check.
  GeneratedProgram Origin;
  Origin.Name = "fuzz-s1-p0-m-drop-release";
  Origin.Mutated = true;
  Origin.Mutation = MutationKind::DropRelease;
  Origin.MutationNote = "rgn1";
  Origin.Text = "void main() { int x = 1; }\n";
  Finding F{"parity", Origin.Name, "missed", "detail", "", 0};
  std::string Repro = renderReproducer(Origin.Text, F, Origin, 1);
  EXPECT_NE(Repro.find("//!fuzz-oracle: parity\n"), std::string::npos);
  EXPECT_NE(Repro.find("//!fuzz-class: missed\n"), std::string::npos);
  EXPECT_NE(Repro.find("mutation=drop-release"), std::string::npos);
  EXPECT_NE(Repro.find("site=rgn1"), std::string::npos);
  EXPECT_NE(Repro.find("//!fuzz-expect: accept\n"), std::string::npos);
  EXPECT_NE(Repro.find(Origin.Text), std::string::npos);
}

TEST(FuzzCampaign, RejectedReproducerNamesItsDiagnostics) {
  GeneratedProgram Origin;
  Origin.Name = "r";
  Origin.Text = "void main() { nonsense(); }\n";
  Finding F{"parity", "r", "", "", "", 0};
  std::string Repro = renderReproducer(Origin.Text, F, Origin, 2);
  EXPECT_NE(Repro.find("//!fuzz-expect: reject sema-unknown-name"),
            std::string::npos)
      << Repro;
}

} // namespace
