//===- GeneratorTest.cpp - Grammar-directed generator properties ----------===//
//
// Properties every generated program must satisfy before the oracles
// are even interesting: determinism in (seed, index), well-formedness
// (parse + elaborate cleanly), protocol-bias (tracked structure shows
// up), and labeled single-defect mutants that differ from their twin.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzz.h"
#include "fuzz/Oracles.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace vault;
using namespace vault::fuzz;

namespace {

TEST(FuzzGenerator, SameSeedSameBytes) {
  Generator A(42), B(42);
  for (unsigned I = 0; I != 20; ++I) {
    GeneratedProgram PA = A.generate(I), PB = B.generate(I);
    EXPECT_EQ(PA.Text, PB.Text) << "program " << I;
    EXPECT_EQ(PA.Name, PB.Name);
  }
}

TEST(FuzzGenerator, GenerateIsIdempotentPerIndex) {
  // generate(I) must not depend on call order or prior calls.
  Generator G(7);
  GeneratedProgram Later = G.generate(9);
  GeneratedProgram Again = G.generate(9);
  Generator Fresh(7);
  EXPECT_EQ(Later.Text, Again.Text);
  EXPECT_EQ(Later.Text, Fresh.generate(9).Text);
}

TEST(FuzzGenerator, DifferentSeedsDiverge) {
  Generator A(1), B(2);
  unsigned Different = 0;
  for (unsigned I = 0; I != 10; ++I)
    if (A.generate(I).Text != B.generate(I).Text)
      ++Different;
  EXPECT_GT(Different, 7u);
}

TEST(FuzzGenerator, CleanProgramsParseAndElaborate) {
  // Clean programs must never produce lex/parse/sema errors; only
  // flow diagnostics (join conservatism) are tolerable.
  Generator G(3);
  for (unsigned I = 0; I != 30; ++I) {
    GeneratedProgram P = G.generate(I);
    StaticRun S = checkText(P.Name, P.Text);
    for (DiagId Id : S.ErrorIds)
      EXPECT_GE(static_cast<int>(Id), static_cast<int>(DiagId::FlowGuardNotHeld))
          << P.Name << " has a front-end error:\n"
          << S.Signature << "\n"
          << P.Text;
  }
}

TEST(FuzzGenerator, ProgramsAreProtocolBiased) {
  // The bias the tentpole asks for: tracked structure must dominate
  // the stream, not be an occasional guest.
  Generator G(11);
  unsigned Tracked = 0, Branchy = 0;
  for (unsigned I = 0; I != 30; ++I) {
    const std::string T = G.generate(I).Text;
    if (T.find("tracked") != std::string::npos ||
        T.find("Region.create") != std::string::npos)
      ++Tracked;
    if (T.find("if (") != std::string::npos ||
        T.find("while (") != std::string::npos ||
        T.find("switch (") != std::string::npos)
      ++Branchy;
  }
  EXPECT_EQ(Tracked, 30u);
  EXPECT_GT(Branchy, 15u);
}

TEST(FuzzGenerator, MutantsCarryLabelsAndDiffer) {
  Generator G(5);
  for (unsigned I = 0; I != 20; ++I) {
    GeneratedProgram Clean = G.generate(I);
    std::optional<GeneratedProgram> Mut = G.mutate(I);
    ASSERT_TRUE(Mut.has_value()) << "program " << I;
    EXPECT_TRUE(Mut->Mutated);
    EXPECT_NE(Mut->Mutation, MutationKind::None);
    EXPECT_FALSE(Mut->ExpectClean);
    EXPECT_NE(Mut->Text, Clean.Text) << Mut->Name;
    EXPECT_NE(Mut->Name, Clean.Name);
    EXPECT_FALSE(Mut->MutationNote.empty());
  }
}

TEST(FuzzGenerator, MutationIsDeterministic) {
  Generator A(13), B(13);
  for (unsigned I = 0; I != 20; ++I) {
    auto MA = A.mutate(I), MB = B.mutate(I);
    ASSERT_EQ(MA.has_value(), MB.has_value());
    if (MA) {
      EXPECT_EQ(MA->Text, MB->Text);
      EXPECT_EQ(MA->Mutation, MB->Mutation);
    }
  }
}

TEST(FuzzGenerator, MutationKindsAreDiverse) {
  // Across a modest window every defect class must appear: the
  // detection-rate metric is meaningless if one class dominates.
  Generator G(1);
  std::set<MutationKind> Seen;
  for (unsigned I = 0; I != 60; ++I)
    if (auto M = G.mutate(I))
      Seen.insert(M->Mutation);
  EXPECT_GE(Seen.size(), 4u);
}

TEST(FuzzGenerator, ConcurrencyDefectKindsAreAlwaysDetected) {
  // The three concurrency-domain defect kinds over a fixed-seed window
  // of 300 programs: every mutant of these kinds must appear and every
  // one must be detected (statically rejected or dynamically caught —
  // the parity oracle classifies anything else as "missed").
  Generator G(9);
  std::map<MutationKind, unsigned> Seen;
  for (unsigned I = 0; I != 300; ++I) {
    auto M = G.mutate(I);
    if (!M)
      continue;
    if (M->Mutation != MutationKind::UnguardedAccess &&
        M->Mutation != MutationKind::UnlockBorrowLive &&
        M->Mutation != MutationKind::UseAfterRevoke)
      continue;
    ++Seen[M->Mutation];
    OracleOutcome O = runParityOracle(*M);
    EXPECT_NE(O.Class, "missed")
        << M->Name << " (" << mutationName(M->Mutation) << "): " << O.Detail;
    EXPECT_FALSE(O.violation()) << M->Name << ": " << O.Detail;
  }
  EXPECT_GT(Seen[MutationKind::UnguardedAccess], 0u);
  EXPECT_GT(Seen[MutationKind::UnlockBorrowLive], 0u);
  EXPECT_GT(Seen[MutationKind::UseAfterRevoke], 0u);
}

TEST(FuzzGenerator, MutexProgramsAreSelfContained) {
  // Generated programs must not rely on corpus includes: any program
  // using the mutex fragment carries its own MUTEX interface.
  Generator G(9);
  unsigned WithMutex = 0;
  for (unsigned I = 0; I != 60; ++I) {
    GeneratedProgram P = G.generate(I);
    if (P.Text.find("mutex_create") == std::string::npos)
      continue;
    ++WithMutex;
    EXPECT_NE(P.Text.find("interface MUTEX"), std::string::npos) << P.Name;
    EXPECT_EQ(P.Text.find("//!include"), std::string::npos) << P.Name;
    EXPECT_FALSE(P.RoundtripEligible) << P.Name;
  }
  EXPECT_GT(WithMutex, 0u);
}

TEST(FuzzGenerator, HeaderCommentNamesProvenance) {
  Generator G(77);
  GeneratedProgram P = G.generate(4);
  EXPECT_NE(P.Text.find("seed=77"), std::string::npos);
  EXPECT_NE(P.Text.find("program=4"), std::string::npos);
}

} // namespace
