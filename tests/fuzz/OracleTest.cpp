//===- OracleTest.cpp - Differential oracle behavior ----------------------===//
//
// Pins the classification logic of the three oracles on hand-written
// programs whose ground truth is known exactly, then sweeps them over
// a window of generated programs where only classified outcomes are
// allowed.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracles.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

using namespace vault;
using namespace vault::fuzz;

namespace {

const char *Prelude = R"(interface REGION {
  type region;
  tracked(R) region create() [new R];
  void delete(tracked(R) region) [-R];
}
extern module Region : REGION;
struct point { int x; int y; }
void print(string s);
void print_int(int n);
)";

GeneratedProgram program(const std::string &Name, const std::string &Body,
                         bool Mutated = false,
                         MutationKind K = MutationKind::None) {
  GeneratedProgram P;
  P.Name = Name;
  P.Text = std::string(Prelude) + "void main() {\n" + Body + "}\n";
  P.Mutated = Mutated;
  P.Mutation = K;
  P.ExpectClean = !Mutated;
  P.MutationNote = Mutated ? "rgn" : "";
  return P;
}

std::string scratch() {
  auto Dir = std::filesystem::temp_directory_path() / "vault-oracle-test";
  std::filesystem::create_directories(Dir);
  return Dir.string();
}

TEST(FuzzParityOracle, CleanProgramIsOk) {
  GeneratedProgram P = program("clean", R"(
  tracked(R) region r = Region.create();
  point p = new(r) point { x = 1; y = 2; };
  print_int(p.x + p.y);
  Region.delete(r);
)");
  OracleOutcome O = runParityOracle(P);
  EXPECT_TRUE(O.ok()) << O.Detail;
}

TEST(FuzzParityOracle, SeededLeakIsDetectedStatically) {
  // The defining case of the paper: a leaked region is invisible to a
  // dynamic-oracle-free test run but the checker rejects it. The
  // interpreter's end-of-run leak detector also sees it, so this is
  // "detected-both".
  GeneratedProgram P = program("leak", R"(
  tracked(R) region r = Region.create();
  print_int(1);
)",
                               true, MutationKind::DropRelease);
  OracleOutcome O = runParityOracle(P);
  EXPECT_FALSE(O.violation()) << O.Detail;
  EXPECT_TRUE(O.Class == "detected-both" || O.Class == "static-only")
      << O.Class;
}

TEST(FuzzParityOracle, ColdPathDefectIsStaticOnly) {
  // The release is skipped only on an untaken path: a single dynamic
  // run cannot see the defect; the checker must.
  GeneratedProgram P = program("cold", R"(
  tracked(R) region r = Region.create();
  if (0 < 1) {
    Region.delete(r);
  }
)",
                               true, MutationKind::OnePathLeak);
  P.MutationIsCold = true;
  OracleOutcome O = runParityOracle(P);
  EXPECT_EQ(O.Class, "static-only") << O.Detail;
  EXPECT_FALSE(O.violation());
}

TEST(FuzzParityOracle, DoubleReleaseDetected) {
  GeneratedProgram P = program("dbl", R"(
  tracked(R) region r = Region.create();
  Region.delete(r);
  Region.delete(r);
)",
                               true, MutationKind::DoubleRelease);
  OracleOutcome O = runParityOracle(P);
  EXPECT_FALSE(O.violation()) << O.Detail;
  EXPECT_NE(O.Class, "missed");
}

TEST(FuzzDeterminismOracle, StableProgramPasses) {
  GeneratedProgram P = program("det", R"(
  tracked(R) region r = Region.create();
  int i = 0;
  while (i < 3) {
    point p = new(r) point { x = i; y = i; };
    print_int(p.x);
    i = i + 1;
  }
  Region.delete(r);
)");
  OracleOutcome O = runDeterminismOracle(P, 4, scratch());
  EXPECT_TRUE(O.ok()) << O.Detail;
}

TEST(FuzzDeterminismOracle, RejectedProgramAlsoChecked) {
  // Diagnostics of rejected programs must be deterministic too —
  // that's where ordering bugs live.
  GeneratedProgram P = program("detbad", R"(
  tracked(R) region r = Region.create();
)");
  OracleOutcome O = runDeterminismOracle(P, 4, scratch());
  EXPECT_TRUE(O.ok()) << O.Detail;
}

TEST(FuzzRoundtripOracle, AcceptedProgramRoundTrips) {
  if (!haveCCompiler())
    GTEST_SKIP() << "no C compiler";
  GeneratedProgram P = program("rt", R"(
  tracked(R) region r = Region.create();
  R:point p = new(r) point { x = 6; y = 7; };
  print_int(p.x * p.y);
  print("done");
  Region.delete(r);
)");
  OracleOutcome O = runRoundtripOracle(P, scratch());
  EXPECT_TRUE(O.ok()) << O.Detail << " class=" << O.Class;
}

// Regression pin: the oracle used to splice scratch paths into the
// std::system command line unquoted, so a cache/temp directory with a
// space (or worse) split into multiple shell words and misrouted the
// compile. Every path is shell-quoted now.
TEST(FuzzRoundtripOracle, ScratchDirWithShellMetacharacters) {
  if (!haveCCompiler())
    GTEST_SKIP() << "no C compiler";
  auto Dir = std::filesystem::temp_directory_path() /
             "vault oracle scratch ($HOME; 'quoted')";
  std::filesystem::create_directories(Dir);
  GeneratedProgram P = program("rtspace", R"(
  tracked(R) region r = Region.create();
  R:point p = new(r) point { x = 6; y = 7; };
  print_int(p.x * p.y);
  print("done");
  Region.delete(r);
)");
  OracleOutcome O = runRoundtripOracle(P, Dir.string());
  EXPECT_TRUE(O.ok()) << O.Detail << " class=" << O.Class;
  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);
}

TEST(FuzzRoundtripOracle, RejectedProgramIsSkipped) {
  GeneratedProgram P = program("rtskip", R"(
  tracked(R) region r = Region.create();
)");
  OracleOutcome O = runRoundtripOracle(P, scratch());
  EXPECT_EQ(O.S, OracleOutcome::Status::Skipped);
  EXPECT_EQ(O.Class, "statically-rejected");
}

TEST(FuzzRoundtripOracle, IneligibleProgramIsSkipped) {
  GeneratedProgram P = program("rtinel", "  print_int(1);\n");
  P.RoundtripEligible = false;
  OracleOutcome O = runRoundtripOracle(P, scratch());
  EXPECT_EQ(O.S, OracleOutcome::Status::Skipped);
  EXPECT_EQ(O.Class, "unsupported-features");
}

TEST(FuzzOracles, GeneratedWindowHasNoViolations) {
  // The core acceptance property at unit-test scale: a window of
  // generated programs and their mutants produces zero unclassified
  // oracle violations.
  Generator G(2026);
  std::string Tmp = scratch();
  for (unsigned I = 0; I != 12; ++I) {
    GeneratedProgram P = G.generate(I);
    OracleOutcome Par = runParityOracle(P);
    EXPECT_FALSE(Par.violation()) << P.Name << ": " << Par.Detail
                                  << "\n" << P.Text;
    OracleOutcome Det = runDeterminismOracle(P, 3, Tmp);
    EXPECT_FALSE(Det.violation()) << P.Name << ": " << Det.Detail;
    if (auto M = G.mutate(I)) {
      OracleOutcome MPar = runParityOracle(*M);
      EXPECT_FALSE(MPar.violation())
          << M->Name << ": " << MPar.Detail << "\n" << M->Text;
    }
  }
}

} // namespace
