//===- ReducerTest.cpp - ddmin reducer properties -------------------------===//

#include "fuzz/Reducer.h"

#include <gtest/gtest.h>

using namespace vault::fuzz;

namespace {

std::string lines(std::initializer_list<const char *> Ls) {
  std::string Out;
  for (const char *L : Ls) {
    Out += L;
    Out += '\n';
  }
  return Out;
}

TEST(FuzzReducer, KeepsOnlyTheFailingLine) {
  std::string In = lines({"a", "b", "MAGIC", "c", "d", "e", "f", "g"});
  auto Pred = [](const std::string &T) {
    return T.find("MAGIC") != std::string::npos;
  };
  ReduceStats S;
  std::string Out = reduceLines(In, Pred, 400, &S);
  EXPECT_EQ(Out, "MAGIC\n");
  EXPECT_EQ(S.LinesBefore, 8u);
  EXPECT_EQ(S.LinesAfter, 1u);
  EXPECT_GT(S.Evals, 0u);
}

TEST(FuzzReducer, KeepsDependentPair) {
  // Two lines that must survive together; ddmin must not delete one
  // without the other.
  std::string In = lines({"x", "OPEN", "y", "z", "CLOSE", "w"});
  auto Pred = [](const std::string &T) {
    return T.find("OPEN") != std::string::npos &&
           T.find("CLOSE") != std::string::npos;
  };
  std::string Out = reduceLines(In, Pred);
  EXPECT_EQ(Out, "OPEN\nCLOSE\n");
}

TEST(FuzzReducer, IsDeterministic) {
  std::string In;
  for (int I = 0; I != 40; ++I)
    In += "line" + std::to_string(I) + "\n";
  In += "KEEP1\nfiller\nKEEP2\n";
  auto Pred = [](const std::string &T) {
    return T.find("KEEP1") != std::string::npos &&
           T.find("KEEP2") != std::string::npos;
  };
  EXPECT_EQ(reduceLines(In, Pred), reduceLines(In, Pred));
}

TEST(FuzzReducer, EvalBudgetIsHonored) {
  std::string In;
  for (int I = 0; I != 200; ++I)
    In += "l" + std::to_string(I) + "\n";
  unsigned Calls = 0;
  auto Pred = [&Calls](const std::string &T) {
    ++Calls;
    return T.find("l0\n") != std::string::npos;
  };
  ReduceStats S;
  reduceLines(In, Pred, 25, &S);
  EXPECT_LE(S.Evals, 25u);
  EXPECT_EQ(Calls, S.Evals);
}

TEST(FuzzReducer, ResultStillFails) {
  // Whatever the budget, the returned text must satisfy the predicate.
  std::string In;
  for (int I = 0; I != 64; ++I)
    In += (I % 7 == 3 ? "NEED" + std::to_string(I) : "pad") + "\n";
  auto Pred = [](const std::string &T) {
    return T.find("NEED3") != std::string::npos &&
           T.find("NEED10") != std::string::npos;
  };
  for (unsigned Budget : {5u, 20u, 400u}) {
    std::string Out = reduceLines(In, Pred, Budget);
    EXPECT_TRUE(Pred(Out)) << "budget " << Budget;
  }
}

TEST(FuzzReducer, SingleLineInputIsReturnedAsIs) {
  auto Pred = [](const std::string &) { return true; };
  EXPECT_EQ(reduceLines("only\n", Pred), "only\n");
}

} // namespace
