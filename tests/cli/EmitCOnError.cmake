# --emit-c on a program with protocol violations must exit non-zero and
# emit NO C at all — not a partial translation unit. And on a clean
# program it must exit zero with non-empty C. Run with:
#   cmake -DVAULTC=<path> -P EmitCOnError.cmake

if(NOT VAULTC)
  message(FATAL_ERROR "pass -DVAULTC=<binary>")
endif()

execute_process(COMMAND ${VAULTC} --emit-c figures/fig2_leaky
  RESULT_VARIABLE RC OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR)
if(RC EQUAL 0)
  message(FATAL_ERROR "--emit-c on an erroring program exited 0")
endif()
if(NOT "${OUT}" STREQUAL "")
  message(FATAL_ERROR "--emit-c on an erroring program wrote to stdout:\n${OUT}")
endif()
if(NOT "${ERR}" MATCHES "protocol violations found")
  message(FATAL_ERROR "expected the violation summary on stderr, got:\n${ERR}")
endif()

execute_process(COMMAND ${VAULTC} --emit-c figures/fig2_okay
  RESULT_VARIABLE RC OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "--emit-c on a clean program exited ${RC}:\n${ERR}")
endif()
if("${OUT}" STREQUAL "")
  message(FATAL_ERROR "--emit-c on a clean program emitted nothing")
endif()

message(STATUS "emit-c error handling OK")
