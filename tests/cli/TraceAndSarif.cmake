# End-to-end observability acceptance:
#  (1) --diagnostics-format=sarif on an erroring corpus program emits
#      the SARIF 2.1.0 fields tooling keys on, and --explain threads a
#      multi-step provenance chain through text, json and sarif alike;
#  (2) json/sarif stderr is byte-identical cold vs warm cache at
#      different job counts;
#  (3) --trace-json writes a non-empty trace-event file and refuses to
#      combine with --dump-ast.
# Run with:
#   cmake -DVAULTC=<path> -DWORK_DIR=<tmp> -P TraceAndSarif.cmake

if(NOT VAULTC OR NOT WORK_DIR)
  message(FATAL_ERROR "pass -DVAULTC=<binary> -DWORK_DIR=<tmp dir>")
endif()
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

set(PROGRAM figures/fig2_dangling)

# --- (1) SARIF shape + --explain provenance ---------------------------
execute_process(COMMAND ${VAULTC} --diagnostics-format=sarif --explain
    ${PROGRAM}
  RESULT_VARIABLE RC OUTPUT_VARIABLE OUT ERROR_VARIABLE SARIF)
if(RC EQUAL 0)
  message(FATAL_ERROR "${PROGRAM} unexpectedly checked clean")
endif()
if(NOT "${OUT}" STREQUAL "")
  message(FATAL_ERROR "sarif mode wrote to stdout:\n${OUT}")
endif()
foreach(FIELD
    "\"version\": \"2.1.0\""
    "sarif-2.1.0.json"
    "\"name\": \"vaultc\""
    "\"ruleId\": \"flow-guard-not-held\""
    "\"level\": \"error\""
    "\"uri\": \"figures/fig2_dangling\""
    "\"startLine\": "
    "\"startColumn\": "
    "\"relatedLocations\": ")
  string(FIND "${SARIF}" "${FIELD}" IDX)
  if(IDX EQUAL -1)
    message(FATAL_ERROR "SARIF output is missing '${FIELD}':\n${SARIF}")
  endif()
endforeach()

# The --explain chain must have at least two steps (acquire, consume),
# in every format.
set(STEP1 "was created by the call to 'create'")
set(STEP2 "was consumed by the call to 'delete'")
execute_process(COMMAND ${VAULTC} --explain ${PROGRAM}
  OUTPUT_VARIABLE IGN ERROR_VARIABLE TEXT)
execute_process(COMMAND ${VAULTC} --diagnostics-format=json --explain
    ${PROGRAM}
  OUTPUT_VARIABLE IGN ERROR_VARIABLE JSON)
foreach(DOC TEXT JSON SARIF)
  foreach(STEP "${STEP1}" "${STEP2}")
    string(FIND "${${DOC}}" "${STEP}" IDX)
    if(IDX EQUAL -1)
      message(FATAL_ERROR
        "--explain chain step '${STEP}' missing from ${DOC}:\n${${DOC}}")
    endif()
  endforeach()
endforeach()
# Without --explain, no provenance notes appear.
execute_process(COMMAND ${VAULTC} ${PROGRAM}
  OUTPUT_VARIABLE IGN ERROR_VARIABLE PLAIN)
string(FIND "${PLAIN}" "${STEP1}" IDX)
if(NOT IDX EQUAL -1)
  message(FATAL_ERROR "provenance notes leaked without --explain:\n${PLAIN}")
endif()

# --- (2) json/sarif byte-identity: cold vs warm cache, jobs 1 vs 8 ----
foreach(FMT json sarif)
  set(REF "")
  foreach(RUN cold-jobs1 warm-jobs8 warm-jobs1)
    if(RUN STREQUAL "warm-jobs8")
      set(JOBS 8)
    else()
      set(JOBS 1)
    endif()
    execute_process(COMMAND ${VAULTC} --diagnostics-format=${FMT}
        --jobs ${JOBS} --cache-dir ${WORK_DIR}/${FMT}-cache ${PROGRAM}
      OUTPUT_VARIABLE IGN ERROR_VARIABLE DOC)
    if(REF STREQUAL "")
      set(REF "${DOC}")
    elseif(NOT "${DOC}" STREQUAL "${REF}")
      message(FATAL_ERROR "${FMT} output for ${RUN} differs from cold run:\n"
        "--- cold ---\n${REF}\n--- ${RUN} ---\n${DOC}")
    endif()
  endforeach()
endforeach()

# --- (3) --trace-json --------------------------------------------------
execute_process(COMMAND ${VAULTC} --trace-json ${WORK_DIR}/trace.json
    figures/fig2_okay
  RESULT_VARIABLE RC OUTPUT_VARIABLE IGN ERROR_VARIABLE ERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "--trace-json run failed (${RC}):\n${ERR}")
endif()
file(READ ${WORK_DIR}/trace.json TRACE)
foreach(FIELD "\"traceEvents\":[" "\"ph\":\"X\"" "\"name\":\"flow-check\""
    "\"name\":\"parse\"" "\"displayTimeUnit\":\"ms\"")
  string(FIND "${TRACE}" "${FIELD}" IDX)
  if(IDX EQUAL -1)
    message(FATAL_ERROR "trace file is missing '${FIELD}':\n${TRACE}")
  endif()
endforeach()

execute_process(COMMAND ${VAULTC} --trace-json ${WORK_DIR}/no.json --dump-ast
    figures/fig2_okay
  RESULT_VARIABLE RC OUTPUT_VARIABLE IGN ERROR_VARIABLE ERR)
if(NOT RC EQUAL 2)
  message(FATAL_ERROR "--trace-json with --dump-ast exited ${RC}, wanted 2")
endif()
if(NOT "${ERR}" MATCHES "--trace-json cannot be combined with --dump-ast")
  message(FATAL_ERROR "wrong rejection message:\n${ERR}")
endif()

message(STATUS "trace + sarif acceptance OK")
