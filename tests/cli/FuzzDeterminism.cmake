# Two vaultfuzz runs with the same seed must agree byte-for-byte:
# the report on stdout, every emitted program, and every reduced
# reproducer. Anything less makes fuzz findings unreproducible.
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

foreach(RUN a b)
  execute_process(
    COMMAND ${VAULTFUZZ} --seed 2026 --count 20 --oracle parity,determinism
            --emit ${WORK_DIR}/emit-${RUN} --out ${WORK_DIR}/repro-${RUN}
            --tmp ${WORK_DIR}/tmp-${RUN}
    OUTPUT_FILE ${WORK_DIR}/report-${RUN}.txt
    RESULT_VARIABLE RC)
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR "vaultfuzz run ${RUN} failed with status ${RC}")
  endif()
endforeach()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
  ${WORK_DIR}/report-a.txt ${WORK_DIR}/report-b.txt RESULT_VARIABLE DIFF)
if(NOT DIFF EQUAL 0)
  message(FATAL_ERROR "reports differ between identical-seed runs")
endif()

file(GLOB PROGRAMS_A RELATIVE ${WORK_DIR}/emit-a ${WORK_DIR}/emit-a/*.vlt)
file(GLOB PROGRAMS_B RELATIVE ${WORK_DIR}/emit-b ${WORK_DIR}/emit-b/*.vlt)
if(NOT "${PROGRAMS_A}" STREQUAL "${PROGRAMS_B}")
  message(FATAL_ERROR "emitted program sets differ")
endif()
if("${PROGRAMS_A}" STREQUAL "")
  message(FATAL_ERROR "no programs were emitted")
endif()
foreach(P ${PROGRAMS_A})
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
    ${WORK_DIR}/emit-a/${P} ${WORK_DIR}/emit-b/${P} RESULT_VARIABLE DIFF)
  if(NOT DIFF EQUAL 0)
    message(FATAL_ERROR "program ${P} differs between identical-seed runs")
  endif()
endforeach()

file(REMOVE_RECURSE ${WORK_DIR})
