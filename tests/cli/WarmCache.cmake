# End-to-end incremental-check acceptance: run every corpus program
# twice against one shared --cache-dir; the second (warm) run must
# report zero per-function flow checks in --stats and produce the same
# stderr and exit code as the cold run. Run with:
#   cmake -DVAULTC=<path> -DCORPUS_DIR=<repo/corpus> -DCACHE_DIR=<tmp> -P WarmCache.cmake

if(NOT VAULTC OR NOT CORPUS_DIR OR NOT CACHE_DIR)
  message(FATAL_ERROR
    "pass -DVAULTC=<binary> -DCORPUS_DIR=<corpus> -DCACHE_DIR=<tmp dir>")
endif()

file(REMOVE_RECURSE ${CACHE_DIR})

file(GLOB_RECURSE PROGRAMS RELATIVE ${CORPUS_DIR} ${CORPUS_DIR}/*.vlt)
list(FILTER PROGRAMS EXCLUDE REGEX "^include/")
list(LENGTH PROGRAMS N_PROGRAMS)
if(N_PROGRAMS LESS 10)
  message(FATAL_ERROR "corpus glob found only ${N_PROGRAMS} programs")
endif()

set(TOTAL_WARM_CHECKS 0)
foreach(P ${PROGRAMS})
  string(REGEX REPLACE "\\.vlt$" "" NAME ${P})

  execute_process(COMMAND ${VAULTC} --stats --cache-dir ${CACHE_DIR} ${NAME}
    RESULT_VARIABLE COLD_RC OUTPUT_VARIABLE COLD_OUT ERROR_VARIABLE COLD_ERR)
  execute_process(COMMAND ${VAULTC} --stats --cache-dir ${CACHE_DIR} ${NAME}
    RESULT_VARIABLE WARM_RC OUTPUT_VARIABLE WARM_OUT ERROR_VARIABLE WARM_ERR)

  if(NOT COLD_RC EQUAL WARM_RC)
    message(FATAL_ERROR
      "${NAME}: exit code changed cold=${COLD_RC} warm=${WARM_RC}")
  endif()
  # --stats rides on stderr now; its wall-times are nondeterministic,
  # so compare only the diagnostic prefix (everything before the stats
  # block) byte for byte.
  string(REGEX REPLACE "functions checked:.*" "" COLD_DIAG "${COLD_ERR}")
  string(REGEX REPLACE "functions checked:.*" "" WARM_DIAG "${WARM_ERR}")
  if(NOT "${COLD_DIAG}" STREQUAL "${WARM_DIAG}")
    message(FATAL_ERROR "${NAME}: warm stderr differs from cold:\n"
      "--- cold ---\n${COLD_ERR}\n--- warm ---\n${WARM_ERR}")
  endif()

  if(NOT "${WARM_ERR}" MATCHES "flow checks run:[ ]*([0-9]+)")
    message(FATAL_ERROR "${NAME}: no 'flow checks run' in --stats:\n${WARM_ERR}")
  endif()
  math(EXPR TOTAL_WARM_CHECKS "${TOTAL_WARM_CHECKS} + ${CMAKE_MATCH_1}")
  if(NOT CMAKE_MATCH_1 EQUAL 0)
    message(FATAL_ERROR
      "${NAME}: warm run still performed ${CMAKE_MATCH_1} flow check(s)")
  endif()
endforeach()

message(STATUS
  "warm cache OK: ${N_PROGRAMS} programs, ${TOTAL_WARM_CHECKS} warm flow checks")
