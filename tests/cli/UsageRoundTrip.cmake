# Cross-checks `vaultc --help` against the flags the driver actually
# parses: (1) every flag the option loop compares against must appear
# in the help text, and (2) every flag the help text advertises must be
# accepted by the binary (no "unknown option"). Run with:
#   cmake -DVAULTC=<path> -DVAULTC_SOURCE=<tools/vaultc.cpp> -P UsageRoundTrip.cmake

if(NOT VAULTC OR NOT VAULTC_SOURCE)
  message(FATAL_ERROR "pass -DVAULTC=<binary> -DVAULTC_SOURCE=<vaultc.cpp>")
endif()

execute_process(COMMAND ${VAULTC} --help
  RESULT_VARIABLE HELP_RC OUTPUT_VARIABLE HELP_OUT ERROR_VARIABLE HELP_ERR)
if(NOT HELP_RC EQUAL 0)
  message(FATAL_ERROR "vaultc --help exited with ${HELP_RC}")
endif()
set(HELP_TEXT "${HELP_OUT}${HELP_ERR}")

string(REGEX MATCHALL "--[a-z][a-z-]*" HELP_FLAGS "${HELP_TEXT}")
list(REMOVE_DUPLICATES HELP_FLAGS)

# Flags the driver's option loop parses: the string literals it
# compares arguments against ('A == "--x"' and 'A.rfind("--x=", 0)').
file(READ ${VAULTC_SOURCE} SRC)
string(REGEX MATCHALL "A == \"(--[a-z][a-z-]*)\"" EQ_MATCHES "${SRC}")
string(REGEX MATCHALL "A\\.rfind\\(\"(--[a-z][a-z-]*)=" PREFIX_MATCHES "${SRC}")
set(PARSED_FLAGS "")
foreach(M ${EQ_MATCHES} ${PREFIX_MATCHES})
  string(REGEX MATCH "--[a-z][a-z-]*" F "${M}")
  list(APPEND PARSED_FLAGS ${F})
endforeach()
list(REMOVE_DUPLICATES PARSED_FLAGS)
list(LENGTH PARSED_FLAGS N_PARSED)
if(N_PARSED LESS 5)
  message(FATAL_ERROR "flag extraction from ${VAULTC_SOURCE} looks broken: "
    "only found '${PARSED_FLAGS}'")
endif()

# (1) Usage completeness: every parsed flag is documented.
foreach(F ${PARSED_FLAGS})
  list(FIND HELP_FLAGS ${F} IDX)
  if(IDX EQUAL -1)
    message(FATAL_ERROR "flag '${F}' is parsed by vaultc but missing from "
      "--help output:\n${HELP_TEXT}")
  endif()
endforeach()

# (2) Usage honesty: every documented flag is accepted. Value-taking
# flags get a value; everything else is probed bare against a tiny
# clean corpus program.
foreach(F ${HELP_FLAGS})
  if(F STREQUAL "--help")
    continue() # Probed above.
  elseif(F STREQUAL "--jobs")
    set(PROBE ${F} 1)
  elseif(F STREQUAL "--cache-dir")
    set(PROBE ${F} ${CMAKE_CURRENT_BINARY_DIR}/usage-probe-cache)
  elseif(F STREQUAL "--trace-json")
    set(PROBE ${F} ${CMAKE_CURRENT_BINARY_DIR}/usage-probe-trace.json)
  elseif(F STREQUAL "--stats-json")
    set(PROBE ${F} ${CMAKE_CURRENT_BINARY_DIR}/usage-probe-stats.json)
  elseif(F STREQUAL "--diagnostics-format")
    set(PROBE ${F} text)
  else()
    set(PROBE ${F})
  endif()
  execute_process(COMMAND ${VAULTC} ${PROBE} figures/fig2_okay
    RESULT_VARIABLE RC OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR)
  if("${ERR}" MATCHES "unknown option")
    message(FATAL_ERROR "flag '${F}' is in --help but rejected: ${ERR}")
  endif()
endforeach()

message(STATUS "usage round trip OK: ${PARSED_FLAGS}")
