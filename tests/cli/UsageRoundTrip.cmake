# Cross-checks `vaultc --help` against the flags the driver actually
# parses: (1) every flag the option loop compares against must appear
# in the help text, and (2) every flag the help text advertises must be
# accepted by the binary (no "unknown option"). Run with:
#   cmake -DVAULTC=<path> -DVAULTC_SOURCE=<tools/vaultc.cpp> -P UsageRoundTrip.cmake
# Optionally pass -DVAULTD=<path> -DVAULTD_SOURCE=<tools/vaultd.cpp> to
# run the same round trip over the daemon's options.

if(NOT VAULTC OR NOT VAULTC_SOURCE)
  message(FATAL_ERROR "pass -DVAULTC=<binary> -DVAULTC_SOURCE=<vaultc.cpp>")
endif()

execute_process(COMMAND ${VAULTC} --help
  RESULT_VARIABLE HELP_RC OUTPUT_VARIABLE HELP_OUT ERROR_VARIABLE HELP_ERR)
if(NOT HELP_RC EQUAL 0)
  message(FATAL_ERROR "vaultc --help exited with ${HELP_RC}")
endif()
set(HELP_TEXT "${HELP_OUT}${HELP_ERR}")

string(REGEX MATCHALL "--[a-z][a-z-]*" HELP_FLAGS "${HELP_TEXT}")
list(REMOVE_DUPLICATES HELP_FLAGS)

# Flags the driver's option loop parses: the string literals it
# compares arguments against ('A == "--x"' and 'A.rfind("--x=", 0)').
file(READ ${VAULTC_SOURCE} SRC)
string(REGEX MATCHALL "A == \"(--[a-z][a-z-]*)\"" EQ_MATCHES "${SRC}")
string(REGEX MATCHALL "A\\.rfind\\(\"(--[a-z][a-z-]*)=" PREFIX_MATCHES "${SRC}")
set(PARSED_FLAGS "")
foreach(M ${EQ_MATCHES} ${PREFIX_MATCHES})
  string(REGEX MATCH "--[a-z][a-z-]*" F "${M}")
  list(APPEND PARSED_FLAGS ${F})
endforeach()
list(REMOVE_DUPLICATES PARSED_FLAGS)
list(LENGTH PARSED_FLAGS N_PARSED)
if(N_PARSED LESS 5)
  message(FATAL_ERROR "flag extraction from ${VAULTC_SOURCE} looks broken: "
    "only found '${PARSED_FLAGS}'")
endif()

# (1) Usage completeness: every parsed flag is documented.
foreach(F ${PARSED_FLAGS})
  list(FIND HELP_FLAGS ${F} IDX)
  if(IDX EQUAL -1)
    message(FATAL_ERROR "flag '${F}' is parsed by vaultc but missing from "
      "--help output:\n${HELP_TEXT}")
  endif()
endforeach()

# (2) Usage honesty: every documented flag is accepted. Value-taking
# flags get a value; everything else is probed bare against a tiny
# clean corpus program.
foreach(F ${HELP_FLAGS})
  if(F STREQUAL "--help")
    continue() # Probed above.
  elseif(F STREQUAL "--jobs")
    set(PROBE ${F} 1)
  elseif(F STREQUAL "--cache-dir")
    set(PROBE ${F} ${CMAKE_CURRENT_BINARY_DIR}/usage-probe-cache)
  elseif(F STREQUAL "--trace-json")
    set(PROBE ${F} ${CMAKE_CURRENT_BINARY_DIR}/usage-probe-trace.json)
  elseif(F STREQUAL "--stats-json")
    set(PROBE ${F} ${CMAKE_CURRENT_BINARY_DIR}/usage-probe-stats.json)
  elseif(F STREQUAL "--diagnostics-format")
    set(PROBE ${F} text)
  elseif(F STREQUAL "--engine")
    # --engine/--max-steps only make sense under --run; probe them there.
    set(PROBE --run ${F} both)
  elseif(F STREQUAL "--max-steps")
    set(PROBE --run ${F} 100000)
  else()
    set(PROBE ${F})
  endif()
  execute_process(COMMAND ${VAULTC} ${PROBE} figures/fig2_okay
    RESULT_VARIABLE RC OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR)
  if("${ERR}" MATCHES "unknown option")
    message(FATAL_ERROR "flag '${F}' is in --help but rejected: ${ERR}")
  endif()
endforeach()

message(STATUS "usage round trip OK: ${PARSED_FLAGS}")

# --- vaultd -----------------------------------------------------------
# The daemon gets the identical two-way check. Probes run it as a
# stdio session reading /dev/null, so each one EOFs and exits at once;
# --socket is the one exception (it would sit in accept(), not exit)
# and is covered by the server.smoke_socket end-to-end test instead.
if(VAULTD AND VAULTD_SOURCE)
  execute_process(COMMAND ${VAULTD} --help
    RESULT_VARIABLE DHELP_RC OUTPUT_VARIABLE DHELP_OUT ERROR_VARIABLE DHELP_ERR)
  if(NOT DHELP_RC EQUAL 0)
    message(FATAL_ERROR "vaultd --help exited with ${DHELP_RC}")
  endif()
  set(DHELP_TEXT "${DHELP_OUT}${DHELP_ERR}")
  string(REGEX MATCHALL "--[a-z][a-z-]*" DHELP_FLAGS "${DHELP_TEXT}")
  list(REMOVE_DUPLICATES DHELP_FLAGS)
  # The usage text mentions client-side vaultc flags in its prose
  # (e.g. which documents a check response embeds); only lines that
  # start an option entry count as advertised daemon flags.
  string(REGEX MATCHALL "\n  (--[a-z][a-z-]*)" DOPTION_LINES "${DHELP_TEXT}")
  set(DHELP_FLAGS "")
  foreach(M ${DOPTION_LINES})
    string(REGEX MATCH "--[a-z][a-z-]*" F "${M}")
    list(APPEND DHELP_FLAGS ${F})
  endforeach()
  list(REMOVE_DUPLICATES DHELP_FLAGS)

  file(READ ${VAULTD_SOURCE} DSRC)
  string(REGEX MATCHALL "A == \"(--[a-z][a-z-]*)\"" DEQ_MATCHES "${DSRC}")
  string(REGEX MATCHALL "A\\.rfind\\(\"(--[a-z][a-z-]*)=" DPREFIX_MATCHES
    "${DSRC}")
  set(DPARSED_FLAGS "")
  foreach(M ${DEQ_MATCHES} ${DPREFIX_MATCHES})
    string(REGEX MATCH "--[a-z][a-z-]*" F "${M}")
    list(APPEND DPARSED_FLAGS ${F})
  endforeach()
  list(REMOVE_DUPLICATES DPARSED_FLAGS)
  list(LENGTH DPARSED_FLAGS N_DPARSED)
  if(N_DPARSED LESS 5)
    message(FATAL_ERROR "flag extraction from ${VAULTD_SOURCE} looks broken: "
      "only found '${DPARSED_FLAGS}'")
  endif()

  foreach(F ${DPARSED_FLAGS})
    list(FIND DHELP_FLAGS ${F} IDX)
    if(IDX EQUAL -1)
      message(FATAL_ERROR "flag '${F}' is parsed by vaultd but missing from "
        "--help output:\n${DHELP_TEXT}")
    endif()
  endforeach()

  foreach(F ${DHELP_FLAGS})
    if(F STREQUAL "--help" OR F STREQUAL "--socket")
      continue()
    elseif(F STREQUAL "--jobs")
      set(PROBE ${F} 1)
    elseif(F STREQUAL "--cache-dir")
      set(PROBE ${F} ${CMAKE_CURRENT_BINARY_DIR}/usage-probe-vaultd-cache)
    elseif(F STREQUAL "--max-queue")
      set(PROBE ${F} 2)
    elseif(F STREQUAL "--timeout-ms")
      set(PROBE ${F} 1000)
    elseif(F STREQUAL "--max-frame-bytes")
      set(PROBE ${F} 1024)
    elseif(F STREQUAL "--log-json")
      set(PROBE ${F} ${CMAKE_CURRENT_BINARY_DIR}/usage-probe-vaultd.log)
    elseif(F STREQUAL "--slow-ms")
      set(PROBE ${F} 5)
    elseif(F STREQUAL "--trace-json")
      set(PROBE ${F} ${CMAKE_CURRENT_BINARY_DIR}/usage-probe-vaultd-trace.json)
    else()
      set(PROBE ${F})
    endif()
    execute_process(COMMAND ${VAULTD} ${PROBE}
      INPUT_FILE /dev/null TIMEOUT 30
      RESULT_VARIABLE RC OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR)
    if("${ERR}" MATCHES "unknown option")
      message(FATAL_ERROR "flag '${F}' is in vaultd --help but rejected: "
        "${ERR}")
    endif()
    if(NOT RC EQUAL 0)
      message(FATAL_ERROR "vaultd ${PROBE} against an empty session "
        "exited with ${RC}: ${ERR}")
    endif()
  endforeach()

  message(STATUS "vaultd usage round trip OK: ${DPARSED_FLAGS}")
endif()
