# The bench trajectory round trip: vaultbench's pinned subset must
# produce a well-formed BENCH_checker.json from scratch, append a
# second run to it without corrupting the history, and reject a
# deliberately truncated file. Run with:
#   cmake -DVAULTBENCH=<path> -DWORK_DIR=<tmp> -P BenchTrajectory.cmake

if(NOT VAULTBENCH OR NOT WORK_DIR)
  message(FATAL_ERROR "pass -DVAULTBENCH=<binary> -DWORK_DIR=<tmp dir>")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})
set(OUT ${WORK_DIR}/BENCH_checker.json)

# Fresh file.
execute_process(
  COMMAND ${VAULTBENCH} --subset --iterations 1 --jobs 4
          --label trajectory-test --out ${OUT}
  RESULT_VARIABLE RC OUTPUT_VARIABLE STDOUT ERROR_VARIABLE STDERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "fresh bench run failed (${RC}):\n${STDOUT}\n${STDERR}")
endif()

# Append a second run; both must survive.
execute_process(
  COMMAND ${VAULTBENCH} --subset --iterations 1 --jobs 4
          --label trajectory-test-2 --out ${OUT}
  RESULT_VARIABLE RC OUTPUT_VARIABLE STDOUT ERROR_VARIABLE STDERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "append bench run failed (${RC}):\n${STDOUT}\n${STDERR}")
endif()

execute_process(COMMAND ${VAULTBENCH} --validate ${OUT}
  RESULT_VARIABLE RC OUTPUT_VARIABLE STDOUT ERROR_VARIABLE STDERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "trajectory failed validation:\n${STDOUT}\n${STDERR}")
endif()

file(READ ${OUT} TEXT)
foreach(NEEDLE
    "\"schema\": \"vault-bench-trajectory-v1\""
    "\"label\": \"trajectory-test\""
    "\"label\": \"trajectory-test-2\""
    "\"name\": \"corpus-cold\""
    "\"name\": \"synthetic-many-fns\"")
  string(FIND "${TEXT}" "${NEEDLE}" POS)
  if(POS EQUAL -1)
    message(FATAL_ERROR "trajectory is missing ${NEEDLE}:\n${TEXT}")
  endif()
endforeach()

# Both job counts of each benchmark must be present (the speedup
# comparison needs the jobs=1 baseline next to the parallel number).
string(REGEX MATCHALL "\"jobs\": 1," JOBS1 "${TEXT}")
string(REGEX MATCHALL "\"jobs\": 4," JOBS4 "${TEXT}")
list(LENGTH JOBS1 N1)
list(LENGTH JOBS4 N4)
if(N1 LESS 4 OR N4 LESS 4)
  message(FATAL_ERROR
    "expected 4 jobs=1 and 4 jobs=4 measurements, got ${N1}/${N4}:\n${TEXT}")
endif()

# A truncated file must be rejected, both by --validate and as an
# update target.
string(LENGTH "${TEXT}" LEN)
math(EXPR HALF "${LEN} / 2")
string(SUBSTRING "${TEXT}" 0 ${HALF} BROKEN)
file(WRITE ${WORK_DIR}/broken.json "${BROKEN}")
execute_process(COMMAND ${VAULTBENCH} --validate ${WORK_DIR}/broken.json
  RESULT_VARIABLE RC OUTPUT_QUIET ERROR_QUIET)
if(RC EQUAL 0)
  message(FATAL_ERROR "truncated trajectory passed validation")
endif()
execute_process(
  COMMAND ${VAULTBENCH} --subset --iterations 1 --jobs 4
          --label onto-broken --out ${WORK_DIR}/broken.json
  RESULT_VARIABLE RC OUTPUT_QUIET ERROR_QUIET)
if(RC EQUAL 0)
  message(FATAL_ERROR "vaultbench overwrote a malformed trajectory")
endif()

message(STATUS "bench trajectory round trip OK")
