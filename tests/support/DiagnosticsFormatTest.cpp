//===- DiagnosticsFormatTest.cpp - json/sarif renderer unit tests ---------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "support/DiagnosticsFormat.h"

#include "support/Diagnostics.h"

#include "gtest/gtest.h"

using namespace vault;

namespace {

struct Fixture {
  SourceManager SM;
  DiagnosticEngine Diags{SM};
  uint32_t Buf;

  Fixture() {
    Buf = SM.addBuffer("demo.vlt", "key K;\nfunc f() {}\n");
  }
  SourceLoc at(uint32_t Offset) { return SourceLoc{Buf, Offset}; }
};

TEST(DiagnosticsFormat, JsonCarriesIdSeverityPositionAndNotes) {
  Fixture F;
  F.Diags.report(DiagId::FlowKeyNotHeld, F.at(7), "key 'K' is not held");
  F.Diags.note(F.at(0), "declared here");

  std::string J = renderDiagnosticsJson(F.Diags);
  EXPECT_NE(J.find("\"id\": \"flow-key-not-held\""), std::string::npos);
  EXPECT_NE(J.find("\"severity\": \"error\""), std::string::npos);
  EXPECT_NE(J.find("\"file\": \"demo.vlt\""), std::string::npos);
  EXPECT_NE(J.find("\"line\": 2"), std::string::npos);
  EXPECT_NE(J.find("\"message\": \"key 'K' is not held\""), std::string::npos);
  EXPECT_NE(J.find("\"notes\""), std::string::npos);
  EXPECT_NE(J.find("\"declared here\""), std::string::npos);
}

TEST(DiagnosticsFormat, JsonEscapesMessages) {
  Fixture F;
  F.Diags.report(DiagId::RunError, SourceLoc{}, "a \"quoted\"\nmessage");
  std::string J = renderDiagnosticsJson(F.Diags);
  EXPECT_NE(J.find("a \\\"quoted\\\"\\nmessage"), std::string::npos);
}

TEST(DiagnosticsFormat, SarifHasTheFieldsToolingKeysOn) {
  Fixture F;
  F.Diags.report(DiagId::FlowGuardNotHeld, F.at(7), "guard not held");
  F.Diags.note(F.at(0), "key came from here");

  std::string S = renderDiagnosticsSarif(F.Diags);
  EXPECT_NE(S.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(S.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(S.find("\"name\": \"vaultc\""), std::string::npos);
  EXPECT_NE(S.find("\"ruleId\": \"flow-guard-not-held\""), std::string::npos);
  EXPECT_NE(S.find("\"level\": \"error\""), std::string::npos);
  EXPECT_NE(S.find("\"uri\": \"demo.vlt\""), std::string::npos);
  EXPECT_NE(S.find("\"startLine\": 2"), std::string::npos);
  EXPECT_NE(S.find("\"startColumn\": "), std::string::npos);
  EXPECT_NE(S.find("\"relatedLocations\""), std::string::npos);
  EXPECT_NE(S.find("\"key came from here\""), std::string::npos);
  // The rules table lists each distinct rule once.
  EXPECT_NE(S.find("\"rules\": [{\"id\": \"flow-guard-not-held\"}]"),
            std::string::npos);
}

TEST(DiagnosticsFormat, GuardBorrowCodesRoundTripThroughBothRenderers) {
  // The concurrency-domain codes are newer than the renderers; pin
  // that both formats carry them by name.
  Fixture F;
  F.Diags.report(DiagId::FlowGuardedBorrowLive, F.at(7),
                 "cannot give up guard key 'M' while borrow 'b' guarded by "
                 "it is still live");
  F.Diags.note(F.at(0), "key 'b' was split from key 'D' by this borrow");
  F.Diags.report(DiagId::FlowBorrowNotLive, F.at(7),
                 "key 'b' is not a live borrow at this endborrow");
  F.Diags.report(DiagId::FlowBorrowLiveAtExit, F.at(7),
                 "borrow 'b' is still live at function exit");

  std::string J = renderDiagnosticsJson(F.Diags);
  EXPECT_NE(J.find("\"id\": \"flow-guarded-borrow-live\""), std::string::npos);
  EXPECT_NE(J.find("\"id\": \"flow-borrow-not-live\""), std::string::npos);
  EXPECT_NE(J.find("\"id\": \"flow-borrow-live-at-exit\""), std::string::npos);
  EXPECT_NE(J.find("was split from key 'D'"), std::string::npos);

  std::string S = renderDiagnosticsSarif(F.Diags);
  EXPECT_NE(S.find("\"ruleId\": \"flow-guarded-borrow-live\""),
            std::string::npos);
  EXPECT_NE(S.find("\"ruleId\": \"flow-borrow-not-live\""), std::string::npos);
  EXPECT_NE(S.find("\"ruleId\": \"flow-borrow-live-at-exit\""),
            std::string::npos);
  // Each distinct rule appears once in the rules table.
  EXPECT_NE(S.find("{\"id\": \"flow-guarded-borrow-live\"}"),
            std::string::npos);
}

TEST(DiagnosticsFormat, EmptyEngineStillRendersValidDocuments) {
  Fixture F;
  std::string J = renderDiagnosticsJson(F.Diags);
  EXPECT_NE(J.find("\"diagnostics\""), std::string::npos);
  std::string S = renderDiagnosticsSarif(F.Diags);
  EXPECT_NE(S.find("\"results\""), std::string::npos);
}

TEST(DiagnosticsFormat, RenderingIsDeterministic) {
  Fixture F;
  F.Diags.report(DiagId::FlowKeyLeaked, F.at(3), "leaked");
  EXPECT_EQ(renderDiagnosticsJson(F.Diags), renderDiagnosticsJson(F.Diags));
  EXPECT_EQ(renderDiagnosticsSarif(F.Diags), renderDiagnosticsSarif(F.Diags));
}

} // namespace
