//===- JsonParseTest.cpp - Hardened JSON request parsing ------------------===//
//
// The frame parser is the trust boundary of the check server: every
// malformed byte sequence a client can send — truncated UTF-8,
// unterminated strings, lone surrogates, over-deep nesting, oversized
// documents — must come back as a structured error, never a crash or a
// silently-wrong value. These tests pin both halves: what parses (and
// to what), and what is rejected (and where).
//
//===----------------------------------------------------------------------===//

#include "support/JsonParse.h"

#include <gtest/gtest.h>

using namespace vault;

namespace {

json::Value parseOk(const std::string &Text) {
  std::string Err;
  std::optional<json::Value> V = json::parseJson(Text, &Err);
  EXPECT_TRUE(V.has_value()) << Text << "\n" << Err;
  return V ? *V : json::Value{};
}

std::string parseErr(const std::string &Text,
                     const json::ParseLimits &Limits = {}) {
  std::string Err;
  std::optional<json::Value> V = json::parseJson(Text, &Err, Limits);
  EXPECT_FALSE(V.has_value()) << Text;
  EXPECT_EQ(Err.rfind("offset ", 0), 0u) << Err;
  return Err;
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parseOk("null").isNull());
  EXPECT_TRUE(parseOk("true").B);
  EXPECT_FALSE(parseOk("false").B);
  EXPECT_EQ(parseOk("0").Num, 0);
  EXPECT_EQ(parseOk("-1.5").Num, -1.5);
  EXPECT_EQ(parseOk("2e3").Num, 2000);
  EXPECT_EQ(parseOk(" \t\r\n 42 \n").Num, 42);
  EXPECT_EQ(parseOk("\"\"").Str, "");
  EXPECT_EQ(parseOk("\"hi\"").Str, "hi");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parseOk(R"("a\"b\\c\/d\b\f\n\r\t")").Str, "a\"b\\c/d\b\f\n\r\t");
  EXPECT_EQ(parseOk(R"("\u0041\u00e9")").Str, "A\xC3\xA9");
  // Astral plane via a surrogate pair: U+1F600.
  EXPECT_EQ(parseOk(R"("\uD83D\uDE00")").Str, "\xF0\x9F\x98\x80");
  // Raw, well-formed UTF-8 passes through byte-for-byte.
  EXPECT_EQ(parseOk("\"caf\xC3\xA9\"").Str, "caf\xC3\xA9");
}

TEST(JsonParse, Containers) {
  json::Value V = parseOk(R"({"a": [1, 2, {"b": "c"}], "d": null, "a": 9})");
  ASSERT_TRUE(V.isObject());
  // Source order preserved; find() returns the first duplicate.
  ASSERT_EQ(V.Members.size(), 3u);
  EXPECT_EQ(V.Members[0].first, "a");
  EXPECT_EQ(V.Members[1].first, "d");
  EXPECT_EQ(V.Members[2].first, "a");
  const json::Value *A = V.find("a");
  ASSERT_TRUE(A && A->isArray());
  ASSERT_EQ(A->Elems.size(), 3u);
  EXPECT_EQ(A->Elems[1].Num, 2);
  const json::Value *B = A->Elems[2].find("b");
  ASSERT_TRUE(B);
  EXPECT_EQ(B->Str, "c");
  EXPECT_EQ(V.find("nope"), nullptr);
}

TEST(JsonParse, EmptyAndTruncatedInput) {
  parseErr("");
  parseErr("   ");
  parseErr("{");
  parseErr("[1, 2");
  parseErr("{\"a\":");
  parseErr("tru");
  parseErr("nul");
}

TEST(JsonParse, TrailingGarbageRejected) {
  EXPECT_NE(parseErr("1 2").find("trailing"), std::string::npos);
  parseErr("{} x");
  parseErr("\"a\"\"b\"");
}

TEST(JsonParse, MalformedStringsRejected) {
  parseErr("\"unterminated");
  parseErr("\"bad escape \\q\"");
  parseErr("\"half escape \\");
  parseErr("\"ctrl \x01 char\"");
  parseErr("\"\\u12\"");      // Truncated \u escape.
  parseErr("\"\\uD800\"");    // Lone high surrogate.
  parseErr("\"\\uDC00\"");    // Lone low surrogate.
  parseErr("\"\\uD800\\u0041\""); // High surrogate paired with non-low.
}

TEST(JsonParse, TruncatedUtf8Rejected) {
  parseErr("\"\xC3\"");         // Lead byte, missing continuation.
  parseErr("\"\xE2\x82\"");     // Three-byte sequence cut at two.
  parseErr("\"\xF0\x9F\x98\""); // Four-byte sequence cut at three.
  parseErr("\"\x80\"");         // Bare continuation byte.
  parseErr("\"\xFF\"");         // Not a UTF-8 byte at all.
  parseErr("\"\xC0\xAF\"");     // Overlong encoding.
}

TEST(JsonParse, MalformedNumbersRejected) {
  parseErr("01");
  parseErr("-");
  parseErr("1.");
  parseErr("1e");
  parseErr("1e+");
  parseErr(".5");
  parseErr("+1");
  // Overflows to infinity: the protocol refuses non-finite values.
  EXPECT_NE(parseErr("1e999").find("out of range"), std::string::npos);
}

TEST(JsonParse, DepthLimit) {
  std::string Deep;
  for (int I = 0; I < 80; ++I)
    Deep += '[';
  for (int I = 0; I < 80; ++I)
    Deep += ']';
  EXPECT_NE(parseErr(Deep).find("nesting"), std::string::npos);

  std::string Shallow = "[[[[[[[[[[1]]]]]]]]]]";
  EXPECT_TRUE(parseOk(Shallow).isArray());

  json::ParseLimits Tight;
  Tight.MaxDepth = 2;
  std::string Err;
  EXPECT_TRUE(json::parseJson("[[1]]", &Err, Tight).has_value());
  EXPECT_FALSE(json::parseJson("[[[1]]]", &Err, Tight).has_value());
}

TEST(JsonParse, ByteLimitCheckedBeforeScanning) {
  json::ParseLimits Tight;
  Tight.MaxBytes = 8;
  std::string Err;
  EXPECT_TRUE(json::parseJson("[1, 2]", &Err, Tight).has_value());
  EXPECT_FALSE(json::parseJson("[1, 2, 3]", &Err, Tight).has_value());
  EXPECT_NE(Err.find("byte limit"), std::string::npos);
}

TEST(JsonParse, ErrorsCarryTheFailureOffset) {
  std::string Err;
  EXPECT_FALSE(json::parseJson("{\"a\": \x01}", &Err).has_value());
  // The offset points into the document, not at 0.
  EXPECT_EQ(Err.rfind("offset ", 0), 0u);
  EXPECT_NE(Err, "offset 0: unexpected end of input");
}

} // namespace
