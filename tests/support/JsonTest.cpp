//===- JsonTest.cpp - json::escape validity under hostile input -----------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// The observability emitters feed raw source bytes into JSON string
// literals (diagnostics quote source text, trace spans carry file
// names). A source file is allowed to contain arbitrary bytes, so the
// escaper must turn every input into a *valid UTF-8* JSON document —
// the bug pinned here was bytes >= 0x80 passing through unvalidated,
// which made --diagnostics-format=json output unparseable by any
// conforming reader. The strict parser below rejects exactly what
// RFC 8259 rejects: malformed UTF-8, unescaped control characters,
// and bad escape sequences.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include "support/Diagnostics.h"
#include "support/DiagnosticsFormat.h"
#include "support/Trace.h"

#include <cctype>
#include <cstring>

#include "gtest/gtest.h"

using namespace vault;

namespace {

/// A strict RFC 8259 JSON validator (structure + string contents).
/// Returns true iff \p S is one well-formed JSON value. Carried by the
/// test on purpose: the toolchain's Json.h is emit-only.
class StrictParser {
public:
  explicit StrictParser(const std::string &S) : S(S) {}

  bool valid() {
    ws();
    if (!value())
      return false;
    ws();
    return I == S.size();
  }

private:
  const std::string &S;
  size_t I = 0;

  bool eof() const { return I >= S.size(); }
  char peek() const { return S[I]; }
  void ws() {
    while (!eof() && (S[I] == ' ' || S[I] == '\t' || S[I] == '\n' ||
                      S[I] == '\r'))
      ++I;
  }
  bool lit(const char *L) {
    size_t Len = std::strlen(L);
    if (S.compare(I, Len, L) != 0)
      return false;
    I += Len;
    return true;
  }

  bool value() {
    if (eof())
      return false;
    switch (peek()) {
    case '{': return object();
    case '[': return array();
    case '"': return string();
    case 't': return lit("true");
    case 'f': return lit("false");
    case 'n': return lit("null");
    default: return number();
    }
  }

  bool object() {
    ++I; // '{'
    ws();
    if (!eof() && peek() == '}') {
      ++I;
      return true;
    }
    for (;;) {
      ws();
      if (eof() || peek() != '"' || !string())
        return false;
      ws();
      if (eof() || S[I++] != ':')
        return false;
      ws();
      if (!value())
        return false;
      ws();
      if (eof())
        return false;
      if (S[I] == ',') {
        ++I;
        continue;
      }
      return S[I++] == '}';
    }
  }

  bool array() {
    ++I; // '['
    ws();
    if (!eof() && peek() == ']') {
      ++I;
      return true;
    }
    for (;;) {
      ws();
      if (!value())
        return false;
      ws();
      if (eof())
        return false;
      if (S[I] == ',') {
        ++I;
        continue;
      }
      return S[I++] == ']';
    }
  }

  bool hex4() {
    for (int K = 0; K != 4; ++K) {
      if (eof() || !std::isxdigit(static_cast<unsigned char>(S[I])))
        return false;
      ++I;
    }
    return true;
  }

  bool string() {
    ++I; // Opening quote.
    while (!eof()) {
      unsigned char C = static_cast<unsigned char>(S[I]);
      if (C == '"') {
        ++I;
        return true;
      }
      if (C == '\\') {
        ++I;
        if (eof())
          return false;
        char E = S[I++];
        if (E == 'u') {
          if (!hex4())
            return false;
          continue;
        }
        if (!std::strchr("\"\\/bfnrt", E))
          return false;
        continue;
      }
      if (C < 0x20)
        return false; // Unescaped control character.
      size_t Len = json::utf8SequenceLength(S, I);
      if (Len == 0)
        return false; // Invalid UTF-8.
      I += Len;
    }
    return false; // Unterminated.
  }

  bool number() {
    size_t Start = I;
    if (!eof() && peek() == '-')
      ++I;
    while (!eof() && std::isdigit(static_cast<unsigned char>(S[I])))
      ++I;
    if (I == Start || (S[Start] == '-' && I == Start + 1))
      return false;
    if (!eof() && peek() == '.') {
      ++I;
      while (!eof() && std::isdigit(static_cast<unsigned char>(S[I])))
        ++I;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++I;
      if (!eof() && (peek() == '+' || peek() == '-'))
        ++I;
      while (!eof() && std::isdigit(static_cast<unsigned char>(S[I])))
        ++I;
    }
    return true;
  }
};

bool strictValid(const std::string &J) { return StrictParser(J).valid(); }

TEST(JsonEscape, PassesValidUtf8Through) {
  // 2-, 3- and 4-byte sequences survive byte-identically.
  std::string S = "caf\xC3\xA9 \xE2\x82\xAC \xF0\x9F\x94\x91";
  EXPECT_EQ(json::escape(S), S);
  EXPECT_TRUE(strictValid(json::str(S)));
}

TEST(JsonEscape, ReplacesInvalidBytesWithUFFFD) {
  // A stray continuation byte, a truncated lead, and an overlong NUL.
  EXPECT_EQ(json::escape("\x80"), "\\ufffd");
  EXPECT_EQ(json::escape("a\xC3"), "a\\ufffd");
  EXPECT_EQ(json::escape("\xC0\x80"), "\\ufffd\\ufffd");
  // CESU-style surrogate halves are not valid UTF-8.
  EXPECT_EQ(json::escape("\xED\xA0\x80"), "\\ufffd\\ufffd\\ufffd");
  // Leads above U+10FFFF.
  EXPECT_EQ(json::escape("\xF5\x90\x80\x80"),
            "\\ufffd\\ufffd\\ufffd\\ufffd");
}

TEST(JsonEscape, InvalidByteDoesNotEatTheFollowingValidSequence) {
  std::string Out = json::escape("\xC3high\xC3\xA9");
  EXPECT_EQ(Out, "\\ufffdhigh\xC3\xA9");
}

TEST(JsonEscape, ControlAndQuoteEscapesUnchanged) {
  EXPECT_EQ(json::escape("a\"b\\c\n\t\x01"), "a\\\"b\\\\c\\n\\t\\u0001");
}

TEST(JsonEscape, EveryByteValueYieldsAParseableDocument) {
  std::string All;
  for (int B = 0; B != 256; ++B)
    All += static_cast<char>(B);
  EXPECT_TRUE(strictValid(json::str(All)));
}

TEST(JsonEscape, BadByteDiagnosticRoundTripsThroughStrictParser) {
  // The pinned end-to-end path: a diagnostic quoting invalid UTF-8
  // (e.g. the lexer echoing a garbage source byte) must still render
  // as a strictly parseable --diagnostics-format=json document.
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  uint32_t Buf = SM.addBuffer("bad.vlt", "key \xFF\xFE K;\n");
  Diags.report(DiagId::LexUnknownChar, SourceLoc{Buf, 4},
               std::string("unexpected character '\xFF\xFE'"));
  Diags.note(SourceLoc{Buf, 0}, std::string("near byte \x80 here"));

  std::string J = renderDiagnosticsJson(Diags);
  EXPECT_TRUE(strictValid(J)) << J;
  EXPECT_NE(J.find("\\ufffd"), std::string::npos);

  std::string Sarif = renderDiagnosticsSarif(Diags);
  EXPECT_TRUE(strictValid(Sarif)) << Sarif;
}

TEST(JsonEscape, TraceWithBadBytesStaysParseable) {
  Tracer T;
  uint64_t Now = T.nowUs();
  T.complete("parse", Now, Now, {{"source", "evil\xFF.vlt"}});
  EXPECT_TRUE(strictValid(T.json())) << T.json();
}

} // namespace
