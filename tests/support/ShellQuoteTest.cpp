//===- ShellQuoteTest.cpp - POSIX shell quoting ---------------------------===//
//
// Pins shellQuote(): plain words pass through untouched, anything else
// becomes a single shell word that survives a real /bin/sh round trip.
// This backs the round-trip oracle's command lines, where an unquoted
// scratch path with a space used to split into two arguments.
//
//===----------------------------------------------------------------------===//

#include "support/ShellQuote.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace vault;

namespace {

TEST(ShellQuote, PlainWordsPassThrough) {
  EXPECT_EQ(shellQuote("cc"), "cc");
  EXPECT_EQ(shellQuote("a.out"), "a.out");
  EXPECT_EQ(shellQuote("/tmp/vault-123/prog_rt.c"), "/tmp/vault-123/prog_rt.c");
  EXPECT_EQ(shellQuote("-std=c11"), "-std=c11");
  EXPECT_EQ(shellQuote("x:y,z+w"), "x:y,z+w");
}

TEST(ShellQuote, EmptyBecomesEmptyWord) {
  // An empty argument must stay an argument, not vanish.
  EXPECT_EQ(shellQuote(""), "''");
}

TEST(ShellQuote, MetacharactersAreWrapped) {
  EXPECT_EQ(shellQuote("fuzz tmp"), "'fuzz tmp'");
  EXPECT_EQ(shellQuote("$HOME"), "'$HOME'");
  EXPECT_EQ(shellQuote("a;rm -rf b"), "'a;rm -rf b'");
  EXPECT_EQ(shellQuote("back\\slash"), "'back\\slash'");
  EXPECT_EQ(shellQuote("new\nline"), "'new\nline'");
  EXPECT_EQ(shellQuote("tick`tock"), "'tick`tock'");
}

TEST(ShellQuote, SingleQuotesAreEscaped) {
  EXPECT_EQ(shellQuote("it's"), "'it'\\''s'");
  EXPECT_EQ(shellQuote("'"), "''\\'''");
}

TEST(ShellQuote, RealShellRoundTrip) {
  if (!std::system(nullptr))
    GTEST_SKIP() << "no command processor";
  const char *Nasty = "a b'c$d\"e`f;g&h|i(j)k*l?m\\n";
  auto Out = std::filesystem::temp_directory_path() / "vault-shellquote-rt";
  std::string Cmd = "printf %s " + shellQuote(Nasty) + " >" +
                    shellQuote(Out.string());
  ASSERT_EQ(std::system(Cmd.c_str()), 0);
  std::ifstream In(Out, std::ios::binary);
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Buf.str(), Nasty);
  std::error_code EC;
  std::filesystem::remove(Out, EC);
}

} // namespace
