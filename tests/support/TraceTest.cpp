//===- TraceTest.cpp - Tracer/TraceSpan unit tests ------------------------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "gtest/gtest.h"

#include <fstream>
#include <thread>

using namespace vault;

namespace {

TEST(Trace, NullTracerRecordsNothingAndAllocatesNothing) {
  // The disabled path must be safe to exercise everywhere: spans over
  // a null tracer are inert.
  TraceSpan Span(nullptr, "never");
  Span.arg("key", std::string("value"));
  Span.arg("n", uint64_t(7));
  // No tracer to inspect; reaching the end without touching one is the
  // assertion.
  SUCCEED();
}

TEST(Trace, CompleteEventsAppearInJson) {
  Tracer T;
  T.complete("alpha", 10, 30, {{"k", "v"}});
  T.complete("beta", 15, 20);
  EXPECT_EQ(T.eventCount(), 2u);

  std::string J = T.json();
  EXPECT_NE(J.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_NE(J.find("\"name\":\"beta\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(J.find("\"args\":{\"k\":\"v\"}"), std::string::npos);
  EXPECT_NE(J.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // alpha (ts 10) sorts before beta (ts 15).
  EXPECT_LT(J.find("\"name\":\"alpha\""), J.find("\"name\":\"beta\""));
}

TEST(Trace, SpanNestingSortsParentFirst) {
  Tracer T;
  // Same begin timestamp: the longer (containing) span must precede
  // the contained one, which is what trace viewers need for nesting.
  T.complete("child", 100, 110);
  T.complete("parent", 100, 200);
  std::string J = T.json();
  EXPECT_LT(J.find("\"name\":\"parent\""), J.find("\"name\":\"child\""));
}

TEST(Trace, RaiiSpanRecordsOnDestruction) {
  Tracer T;
  {
    TraceSpan Span(&T, "scoped");
    Span.arg("answer", uint64_t(42));
    EXPECT_EQ(T.eventCount(), 0u) << "span must not record until closed";
  }
  EXPECT_EQ(T.eventCount(), 1u);
  std::string J = T.json();
  EXPECT_NE(J.find("\"name\":\"scoped\""), std::string::npos);
  EXPECT_NE(J.find("\"answer\":\"42\""), std::string::npos);
}

TEST(Trace, NegativeDurationClampsToZero) {
  Tracer T;
  T.complete("clock-skew", 50, 40);
  EXPECT_NE(T.json().find("\"dur\":0"), std::string::npos);
}

TEST(Trace, ThreadsGetDistinctTidsAndLoseNoEvents) {
  Tracer T;
  constexpr int NThreads = 8, PerThread = 100;
  std::vector<std::thread> Workers;
  for (int W = 0; W < NThreads; ++W)
    Workers.emplace_back([&T] {
      for (int I = 0; I < PerThread; ++I) {
        TraceSpan Span(&T, "work");
        Span.arg("i", uint64_t(I));
      }
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(T.eventCount(), size_t(NThreads * PerThread));
}

TEST(Trace, SecondTracerOnSameThreadDoesNotAliasTheFirst) {
  // The thread-local buffer cache keys on a process-unique tracer id;
  // a fresh tracer (possibly at the same address) must get a fresh
  // buffer, not the previous tracer's.
  auto First = std::make_unique<Tracer>();
  First->complete("one", 0, 1);
  First.reset();
  Tracer Second;
  Second.complete("two", 0, 1);
  EXPECT_EQ(Second.eventCount(), 1u);
  EXPECT_EQ(Second.json().find("\"name\":\"one\""), std::string::npos);
}

TEST(Trace, WriteJsonRoundTripsThroughAFile) {
  Tracer T;
  T.complete("saved", 1, 2);
  std::string Path = ::testing::TempDir() + "/trace-test.json";
  ASSERT_TRUE(T.writeJson(Path));
  std::ifstream In(Path, std::ios::binary);
  std::string Content((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(Content, T.json());
  EXPECT_FALSE(T.writeJson("/nonexistent-dir-xyz/trace.json"));
}

} // namespace
