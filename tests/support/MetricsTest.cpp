//===- MetricsTest.cpp - Metrics registry unit tests ----------------------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include "gtest/gtest.h"

using namespace vault;

namespace {

TEST(Metrics, CountersAddAndSet) {
  Metrics M;
  EXPECT_TRUE(M.empty());
  EXPECT_EQ(M.value("absent"), 0u);
  M.add("a");
  M.add("a", 4);
  M.set("b", 10);
  EXPECT_EQ(M.value("a"), 5u);
  EXPECT_EQ(M.value("b"), 10u);
  EXPECT_FALSE(M.empty());
}

TEST(Metrics, HistogramBucketsValuesAgainstEdges) {
  Metrics M;
  Metrics::Histogram &H = M.histogram("h", {1.0, 10.0});
  H.record(0.5);  // < 1
  H.record(1.0);  // [1, 10)
  H.record(9.99); // [1, 10)
  H.record(10.0); // >= 10
  ASSERT_EQ(H.Buckets.size(), 3u);
  EXPECT_EQ(H.Buckets[0], 1u);
  EXPECT_EQ(H.Buckets[1], 2u);
  EXPECT_EQ(H.Buckets[2], 1u);
  EXPECT_EQ(H.Count, 4u);
  EXPECT_DOUBLE_EQ(H.Sum, 21.49);
  // Re-fetch keeps the existing edges and contents.
  EXPECT_EQ(&M.histogram("h", {99.0}), &H);
  EXPECT_EQ(H.Edges.size(), 2u);
}

TEST(Metrics, RenderTextSortsByNameRegardlessOfInsertionOrder) {
  Metrics A, B;
  A.add("zeta", 1);
  A.add("alpha", 2);
  B.add("alpha", 2);
  B.add("zeta", 1);
  EXPECT_EQ(A.renderText(), B.renderText());
  std::string T = A.renderText();
  EXPECT_LT(T.find("alpha"), T.find("zeta"));
}

TEST(Metrics, RenderJsonIsStableAndContainsEverything) {
  Metrics M;
  M.set("n", 3);
  M.histogram("lat", {0.5}).record(0.25);
  std::string J = M.renderJson();
  EXPECT_NE(J.find("\"counters\""), std::string::npos);
  EXPECT_NE(J.find("\"n\": 3"), std::string::npos);
  EXPECT_NE(J.find("\"histograms\""), std::string::npos);
  EXPECT_NE(J.find("\"lat\""), std::string::npos);
  EXPECT_NE(J.find("\"count\": 1"), std::string::npos);
  EXPECT_EQ(J, M.renderJson()) << "rendering must be deterministic";
}

TEST(Metrics, ResetDropsEverything) {
  Metrics M;
  M.add("c");
  M.histogram("h", {1.0}).record(2.0);
  M.reset();
  EXPECT_TRUE(M.empty());
  EXPECT_EQ(M.value("c"), 0u);
  EXPECT_EQ(M.findHistogram("h"), nullptr);
}

} // namespace
