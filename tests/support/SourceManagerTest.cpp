//===- SourceManagerTest.cpp ----------------------------------------------===//

#include "support/SourceManager.h"

#include <gtest/gtest.h>

using namespace vault;

TEST(SourceManager, EmptyBuffer) {
  SourceManager SM;
  uint32_t Id = SM.addBuffer("empty.vlt", "");
  EXPECT_EQ(Id, 1u);
  EXPECT_EQ(SM.bufferText(Id), "");
  PresumedLoc P = SM.presumed(SM.locInBuffer(Id, 0));
  EXPECT_EQ(P.Line, 1u);
  EXPECT_EQ(P.Column, 1u);
}

TEST(SourceManager, LineAndColumn) {
  SourceManager SM;
  uint32_t Id = SM.addBuffer("t.vlt", "abc\ndef\n\nxyz");
  EXPECT_EQ(SM.presumed(SM.locInBuffer(Id, 0)).Line, 1u);
  EXPECT_EQ(SM.presumed(SM.locInBuffer(Id, 2)).Column, 3u);
  EXPECT_EQ(SM.presumed(SM.locInBuffer(Id, 4)).Line, 2u);
  EXPECT_EQ(SM.presumed(SM.locInBuffer(Id, 4)).Column, 1u);
  EXPECT_EQ(SM.presumed(SM.locInBuffer(Id, 8)).Line, 3u);
  EXPECT_EQ(SM.presumed(SM.locInBuffer(Id, 9)).Line, 4u);
}

TEST(SourceManager, LineText) {
  SourceManager SM;
  uint32_t Id = SM.addBuffer("t.vlt", "first\nsecond\r\nthird");
  EXPECT_EQ(SM.lineText(SM.locInBuffer(Id, 1)), "first");
  EXPECT_EQ(SM.lineText(SM.locInBuffer(Id, 7)), "second");
  EXPECT_EQ(SM.lineText(SM.locInBuffer(Id, 15)), "third");
}

TEST(SourceManager, MultipleBuffers) {
  SourceManager SM;
  uint32_t A = SM.addBuffer("a.vlt", "aaa");
  uint32_t B = SM.addBuffer("b.vlt", "bbb");
  EXPECT_NE(A, B);
  EXPECT_EQ(SM.bufferName(A), "a.vlt");
  EXPECT_EQ(SM.bufferName(B), "b.vlt");
  EXPECT_EQ(SM.numBuffers(), 2u);
}

TEST(SourceManager, InvalidLoc) {
  SourceManager SM;
  PresumedLoc P = SM.presumed(SourceLoc{});
  EXPECT_FALSE(P.isValid());
}

TEST(SourceManager, MissingFile) {
  SourceManager SM;
  EXPECT_FALSE(SM.addFile("/nonexistent/path/x.vlt").has_value());
}
