//===- SourceManagerTest.cpp ----------------------------------------------===//

#include "support/SourceManager.h"

#include <gtest/gtest.h>

using namespace vault;

TEST(SourceManager, EmptyBuffer) {
  SourceManager SM;
  uint32_t Id = SM.addBuffer("empty.vlt", "");
  EXPECT_EQ(Id, 1u);
  EXPECT_EQ(SM.bufferText(Id), "");
  PresumedLoc P = SM.presumed(SM.locInBuffer(Id, 0));
  EXPECT_EQ(P.Line, 1u);
  EXPECT_EQ(P.Column, 1u);
}

TEST(SourceManager, LineAndColumn) {
  SourceManager SM;
  uint32_t Id = SM.addBuffer("t.vlt", "abc\ndef\n\nxyz");
  EXPECT_EQ(SM.presumed(SM.locInBuffer(Id, 0)).Line, 1u);
  EXPECT_EQ(SM.presumed(SM.locInBuffer(Id, 2)).Column, 3u);
  EXPECT_EQ(SM.presumed(SM.locInBuffer(Id, 4)).Line, 2u);
  EXPECT_EQ(SM.presumed(SM.locInBuffer(Id, 4)).Column, 1u);
  EXPECT_EQ(SM.presumed(SM.locInBuffer(Id, 8)).Line, 3u);
  EXPECT_EQ(SM.presumed(SM.locInBuffer(Id, 9)).Line, 4u);
}

TEST(SourceManager, LineText) {
  SourceManager SM;
  uint32_t Id = SM.addBuffer("t.vlt", "first\nsecond\r\nthird");
  EXPECT_EQ(SM.lineText(SM.locInBuffer(Id, 1)), "first");
  EXPECT_EQ(SM.lineText(SM.locInBuffer(Id, 7)), "second");
  EXPECT_EQ(SM.lineText(SM.locInBuffer(Id, 15)), "third");
}

TEST(SourceManager, MultipleBuffers) {
  SourceManager SM;
  uint32_t A = SM.addBuffer("a.vlt", "aaa");
  uint32_t B = SM.addBuffer("b.vlt", "bbb");
  EXPECT_NE(A, B);
  EXPECT_EQ(SM.bufferName(A), "a.vlt");
  EXPECT_EQ(SM.bufferName(B), "b.vlt");
  EXPECT_EQ(SM.numBuffers(), 2u);
}

TEST(SourceManager, InvalidLoc) {
  SourceManager SM;
  PresumedLoc P = SM.presumed(SourceLoc{});
  EXPECT_FALSE(P.isValid());
}

TEST(SourceManager, MissingFile) {
  SourceManager SM;
  EXPECT_FALSE(SM.addFile("/nonexistent/path/x.vlt").has_value());
}

TEST(SourceManager, LoneCRLineEndings) {
  // Classic-Mac endings: a bare '\r' terminates a line exactly like
  // '\n' or "\r\n" would, so the same text has the same line/column
  // numbers in all three encodings.
  SourceManager SM;
  uint32_t Id = SM.addBuffer("cr.vlt", "ab\rcd\ref");
  EXPECT_EQ(SM.presumed(SM.locInBuffer(Id, 0)).Line, 1u);
  EXPECT_EQ(SM.presumed(SM.locInBuffer(Id, 3)).Line, 2u);
  EXPECT_EQ(SM.presumed(SM.locInBuffer(Id, 3)).Column, 1u);
  EXPECT_EQ(SM.presumed(SM.locInBuffer(Id, 6)).Line, 3u);
  EXPECT_EQ(SM.lineText(SM.locInBuffer(Id, 0)), "ab");
  EXPECT_EQ(SM.lineText(SM.locInBuffer(Id, 3)), "cd");
  EXPECT_EQ(SM.lineText(SM.locInBuffer(Id, 6)), "ef");
}

TEST(SourceManager, CrlfMatchesLfPositions) {
  SourceManager SM;
  uint32_t Lf = SM.addBuffer("lf.vlt", "ab\ncd\nef");
  uint32_t Crlf = SM.addBuffer("crlf.vlt", "ab\r\ncd\r\nef");
  // The same character ('c', 'e') gets the same line and column in
  // both encodings, even though its byte offset differs.
  PresumedLoc CLf = SM.presumed(SM.locInBuffer(Lf, 3));
  PresumedLoc CCrlf = SM.presumed(SM.locInBuffer(Crlf, 4));
  EXPECT_EQ(CLf.Line, CCrlf.Line);
  EXPECT_EQ(CLf.Column, CCrlf.Column);
  PresumedLoc ELf = SM.presumed(SM.locInBuffer(Lf, 6));
  PresumedLoc ECrlf = SM.presumed(SM.locInBuffer(Crlf, 8));
  EXPECT_EQ(ELf.Line, ECrlf.Line);
  EXPECT_EQ(ELf.Column, ECrlf.Column);
  // And the rendered line text is CR-free either way.
  EXPECT_EQ(SM.lineText(SM.locInBuffer(Crlf, 0)), "ab");
  EXPECT_EQ(SM.lineText(SM.locInBuffer(Crlf, 4)), "cd");
}

TEST(SourceManager, TabsOccupyOneColumn) {
  // Columns are byte-based: a tab advances the column by one, and
  // diagnostic rendering re-emits the tab in the caret line so the
  // caret still lines up visually.
  SourceManager SM;
  uint32_t Id = SM.addBuffer("tab.vlt", "\tkey L;");
  EXPECT_EQ(SM.presumed(SM.locInBuffer(Id, 1)).Column, 2u);
  EXPECT_EQ(SM.lineText(SM.locInBuffer(Id, 1)), "\tkey L;");
}
