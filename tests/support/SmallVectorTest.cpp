//===- SmallVectorTest.cpp - inline-capacity vector unit tests ------------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// The container under the checker's flow facts. The interesting cases
// are the inline/heap boundary (element destruction, move semantics)
// and ordered insert/erase, which HeldKeySet leans on.
//
//===----------------------------------------------------------------------===//

#include "support/SmallVector.h"

#include "gtest/gtest.h"

#include <string>

using namespace vault;

namespace {

TEST(SmallVector, GrowsPastInlineCapacity) {
  SmallVector<std::string, 2> V;
  for (int I = 0; I != 20; ++I)
    V.push_back("s" + std::to_string(I));
  ASSERT_EQ(V.size(), 20u);
  for (int I = 0; I != 20; ++I)
    EXPECT_EQ(V[I], "s" + std::to_string(I));
}

TEST(SmallVector, InsertKeepsOrderInlineAndHeap) {
  SmallVector<int, 4> V;
  for (int I : {9, 1, 7, 3, 5, 8, 2, 6, 4, 0}) {
    auto *Pos = V.begin();
    while (Pos != V.end() && *Pos < I)
      ++Pos;
    V.insert(Pos, I);
  }
  ASSERT_EQ(V.size(), 10u);
  for (int I = 0; I != 10; ++I)
    EXPECT_EQ(V[I], I);
}

TEST(SmallVector, EraseShiftsTail) {
  SmallVector<int, 4> V;
  for (int I = 0; I != 6; ++I)
    V.push_back(I);
  V.erase(V.begin() + 2); // {0,1,3,4,5}
  V.erase(V.begin());     // {1,3,4,5}
  ASSERT_EQ(V.size(), 4u);
  EXPECT_EQ(V[0], 1);
  EXPECT_EQ(V[1], 3);
  EXPECT_EQ(V[3], 5);
}

TEST(SmallVector, CopyAndMoveAcrossTheBoundary) {
  SmallVector<std::string, 2> Small;
  Small.push_back("a");
  SmallVector<std::string, 2> Big;
  for (int I = 0; I != 8; ++I)
    Big.push_back(std::to_string(I));

  SmallVector<std::string, 2> CopySmall = Small;
  SmallVector<std::string, 2> CopyBig = Big;
  EXPECT_TRUE(CopySmall == Small);
  EXPECT_TRUE(CopyBig == Big);

  SmallVector<std::string, 2> MovedSmall = std::move(CopySmall);
  SmallVector<std::string, 2> MovedBig = std::move(CopyBig);
  EXPECT_TRUE(MovedSmall == Small);
  EXPECT_TRUE(MovedBig == Big);
  EXPECT_TRUE(CopySmall.empty());
  EXPECT_TRUE(CopyBig.empty());

  // Assignment both directions, including heap -> inline reuse.
  CopyBig = Small;
  EXPECT_TRUE(CopyBig == Small);
  CopyBig = std::move(MovedBig);
  EXPECT_TRUE(CopyBig == Big);
}

TEST(SmallVector, EqualityIsElementwise) {
  SmallVector<int, 4> A, B;
  for (int I = 0; I != 3; ++I) {
    A.push_back(I);
    B.push_back(I);
  }
  EXPECT_TRUE(A == B);
  B.back() = 99;
  EXPECT_FALSE(A == B);
  B.back() = 2;
  B.push_back(3);
  EXPECT_FALSE(A == B);
}

} // namespace
