//===- DiagnosticsTest.cpp ------------------------------------------------===//

#include "support/Diagnostics.h"

#include <gtest/gtest.h>

using namespace vault;

namespace {

class DiagnosticsTest : public ::testing::Test {
protected:
  DiagnosticsTest() : Diags(SM) {
    BufferId = SM.addBuffer("t.vlt", "line one\nline two\n");
  }
  SourceManager SM;
  DiagnosticEngine Diags;
  uint32_t BufferId;
};

TEST_F(DiagnosticsTest, CountsErrors) {
  EXPECT_FALSE(Diags.hasErrors());
  Diags.report(DiagId::FlowKeyLeaked, SM.locInBuffer(BufferId, 0), "leak");
  Diags.report(DiagId::SemaUnknownName, SM.locInBuffer(BufferId, 9), "warn",
               DiagSeverity::Warning);
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.diagnostics().size(), 2u);
}

TEST_F(DiagnosticsTest, HasAndCount) {
  Diags.report(DiagId::FlowKeyLeaked, SourceLoc{}, "a");
  Diags.report(DiagId::FlowKeyLeaked, SourceLoc{}, "b");
  EXPECT_TRUE(Diags.has(DiagId::FlowKeyLeaked));
  EXPECT_FALSE(Diags.has(DiagId::FlowGuardNotHeld));
  EXPECT_EQ(Diags.count(DiagId::FlowKeyLeaked), 2u);
}

TEST_F(DiagnosticsTest, RenderIncludesCaret) {
  Diags.report(DiagId::FlowGuardNotHeld, SM.locInBuffer(BufferId, 5),
               "bad access");
  std::string R = Diags.render();
  EXPECT_NE(R.find("t.vlt:1:6"), std::string::npos);
  EXPECT_NE(R.find("bad access"), std::string::npos);
  EXPECT_NE(R.find("flow-guard-not-held"), std::string::npos);
  EXPECT_NE(R.find('^'), std::string::npos);
}

TEST_F(DiagnosticsTest, NotesAttachToLastDiagnostic) {
  Diags.report(DiagId::FlowKeyLeaked, SourceLoc{}, "leak");
  Diags.note(SM.locInBuffer(BufferId, 0), "origin here");
  ASSERT_EQ(Diags.diagnostics().size(), 1u);
  EXPECT_EQ(Diags.diagnostics()[0].Notes.size(), 1u);
}

TEST_F(DiagnosticsTest, SuppressionDiscards) {
  {
    DiagnosticEngine::SuppressionScope Quiet(Diags);
    Diags.report(DiagId::FlowKeyLeaked, SourceLoc{}, "hidden");
    Diags.note(SourceLoc{}, "hidden note");
  }
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.diagnostics().empty());
  Diags.report(DiagId::FlowKeyLeaked, SourceLoc{}, "visible");
  EXPECT_EQ(Diags.errorCount(), 1u);
}

TEST_F(DiagnosticsTest, NestedSuppression) {
  Diags.suppress();
  Diags.suppress();
  Diags.report(DiagId::RunError, SourceLoc{}, "x");
  Diags.unsuppress();
  EXPECT_TRUE(Diags.isSuppressed());
  Diags.report(DiagId::RunError, SourceLoc{}, "y");
  Diags.unsuppress();
  EXPECT_FALSE(Diags.isSuppressed());
  EXPECT_EQ(Diags.errorCount(), 0u);
}

TEST(DiagName, AllIdsHaveNames) {
  for (unsigned I = 0; I != static_cast<unsigned>(DiagId::NumDiags); ++I) {
    const char *N = diagName(static_cast<DiagId>(I));
    EXPECT_NE(std::string(N), "unknown") << "DiagId " << I;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Serialization round trip (incremental-check cache).
//===----------------------------------------------------------------------===//

TEST_F(DiagnosticsTest, SerializationRoundTripsExactly) {
  std::vector<Diagnostic> In;
  Diagnostic A;
  A.Id = DiagId::FlowKeyLeaked;
  A.Severity = DiagSeverity::Error;
  A.Loc = SM.locInBuffer(BufferId, 9);
  A.Message = "key 'R' leaked\twith tab,\nnewline and back\\slash";
  A.Notes.emplace_back(SM.locInBuffer(BufferId, 12), "origin here");
  A.Notes.emplace_back(SourceLoc{}, "note with no location");
  In.push_back(A);
  Diagnostic B;
  B.Id = DiagId::SemaUnknownName;
  B.Severity = DiagSeverity::Warning;
  B.Loc = SourceLoc{}; // Invalid location survives the trip.
  B.Message = "";      // Empty message too.
  In.push_back(B);

  std::string Text = serializeDiagnostics(In, /*BaseOffset=*/9);
  auto Out = deserializeDiagnostics(Text, BufferId, /*BaseOffset=*/9);
  ASSERT_TRUE(Out.has_value());
  ASSERT_EQ(Out->size(), 2u);
  EXPECT_EQ((*Out)[0].Id, A.Id);
  EXPECT_EQ((*Out)[0].Severity, A.Severity);
  EXPECT_EQ((*Out)[0].Loc, A.Loc);
  EXPECT_EQ((*Out)[0].Message, A.Message);
  ASSERT_EQ((*Out)[0].Notes.size(), 2u);
  EXPECT_EQ((*Out)[0].Notes[0].first, A.Notes[0].first);
  EXPECT_EQ((*Out)[0].Notes[0].second, A.Notes[0].second);
  EXPECT_FALSE((*Out)[0].Notes[1].first.isValid());
  EXPECT_EQ((*Out)[1].Id, B.Id);
  EXPECT_EQ((*Out)[1].Severity, B.Severity);
  EXPECT_FALSE((*Out)[1].Loc.isValid());
  EXPECT_EQ((*Out)[1].Message, "");
}

TEST_F(DiagnosticsTest, SerializationRebasesLocations) {
  // Locations are stored relative to the base offset, so a cached
  // entry replays correctly after its function moved within the file:
  // deserializing at a different base shifts every valid location by
  // the same amount, leaving invalid locations untouched.
  std::vector<Diagnostic> In;
  Diagnostic D;
  D.Id = DiagId::FlowGuardNotHeld;
  D.Severity = DiagSeverity::Error;
  D.Loc = SM.locInBuffer(BufferId, 14);
  D.Message = "m";
  D.Notes.emplace_back(SourceLoc{}, "n");
  In.push_back(D);

  std::string Text = serializeDiagnostics(In, /*BaseOffset=*/10);
  auto Out = deserializeDiagnostics(Text, BufferId, /*BaseOffset=*/3);
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ((*Out)[0].Loc.Offset, 7u); // 14 - 10 + 3.
  EXPECT_EQ((*Out)[0].Loc.BufferId, BufferId);
  EXPECT_FALSE((*Out)[0].Notes[0].first.isValid());
}

TEST_F(DiagnosticsTest, DeserializationRejectsMalformedInput) {
  // Strictness: any malformed entry yields nullopt, never a partial
  // or garbage result a replay could then render.
  EXPECT_FALSE(deserializeDiagnostics("garbage\n", 1, 0).has_value());
  EXPECT_FALSE(deserializeDiagnostics("D 0 2 0 ok", 1, 0).has_value())
      << "unterminated final line";
  EXPECT_FALSE(deserializeDiagnostics("D 99999 2 0 m\n", 1, 0).has_value())
      << "diag id out of range";
  EXPECT_FALSE(deserializeDiagnostics("D 0 7 0 m\n", 1, 0).has_value())
      << "severity out of range";
  EXPECT_FALSE(deserializeDiagnostics("D 0 2 x m\n", 1, 0).has_value())
      << "bad location field";
  EXPECT_FALSE(deserializeDiagnostics("D 0 2 0 bad\\escape\n", 1, 0)
                   .has_value())
      << "unknown escape";
  EXPECT_FALSE(deserializeDiagnostics("N 0 orphan note\n", 1, 0).has_value())
      << "note before any diagnostic";
  EXPECT_TRUE(deserializeDiagnostics("", 1, 0).has_value())
      << "empty input is a valid empty result";
}
