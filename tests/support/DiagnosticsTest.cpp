//===- DiagnosticsTest.cpp ------------------------------------------------===//

#include "support/Diagnostics.h"

#include <gtest/gtest.h>

using namespace vault;

namespace {

class DiagnosticsTest : public ::testing::Test {
protected:
  DiagnosticsTest() : Diags(SM) {
    BufferId = SM.addBuffer("t.vlt", "line one\nline two\n");
  }
  SourceManager SM;
  DiagnosticEngine Diags;
  uint32_t BufferId;
};

TEST_F(DiagnosticsTest, CountsErrors) {
  EXPECT_FALSE(Diags.hasErrors());
  Diags.report(DiagId::FlowKeyLeaked, SM.locInBuffer(BufferId, 0), "leak");
  Diags.report(DiagId::SemaUnknownName, SM.locInBuffer(BufferId, 9), "warn",
               DiagSeverity::Warning);
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.diagnostics().size(), 2u);
}

TEST_F(DiagnosticsTest, HasAndCount) {
  Diags.report(DiagId::FlowKeyLeaked, SourceLoc{}, "a");
  Diags.report(DiagId::FlowKeyLeaked, SourceLoc{}, "b");
  EXPECT_TRUE(Diags.has(DiagId::FlowKeyLeaked));
  EXPECT_FALSE(Diags.has(DiagId::FlowGuardNotHeld));
  EXPECT_EQ(Diags.count(DiagId::FlowKeyLeaked), 2u);
}

TEST_F(DiagnosticsTest, RenderIncludesCaret) {
  Diags.report(DiagId::FlowGuardNotHeld, SM.locInBuffer(BufferId, 5),
               "bad access");
  std::string R = Diags.render();
  EXPECT_NE(R.find("t.vlt:1:6"), std::string::npos);
  EXPECT_NE(R.find("bad access"), std::string::npos);
  EXPECT_NE(R.find("flow-guard-not-held"), std::string::npos);
  EXPECT_NE(R.find('^'), std::string::npos);
}

TEST_F(DiagnosticsTest, NotesAttachToLastDiagnostic) {
  Diags.report(DiagId::FlowKeyLeaked, SourceLoc{}, "leak");
  Diags.note(SM.locInBuffer(BufferId, 0), "origin here");
  ASSERT_EQ(Diags.diagnostics().size(), 1u);
  EXPECT_EQ(Diags.diagnostics()[0].Notes.size(), 1u);
}

TEST_F(DiagnosticsTest, SuppressionDiscards) {
  {
    DiagnosticEngine::SuppressionScope Quiet(Diags);
    Diags.report(DiagId::FlowKeyLeaked, SourceLoc{}, "hidden");
    Diags.note(SourceLoc{}, "hidden note");
  }
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.diagnostics().empty());
  Diags.report(DiagId::FlowKeyLeaked, SourceLoc{}, "visible");
  EXPECT_EQ(Diags.errorCount(), 1u);
}

TEST_F(DiagnosticsTest, NestedSuppression) {
  Diags.suppress();
  Diags.suppress();
  Diags.report(DiagId::RunError, SourceLoc{}, "x");
  Diags.unsuppress();
  EXPECT_TRUE(Diags.isSuppressed());
  Diags.report(DiagId::RunError, SourceLoc{}, "y");
  Diags.unsuppress();
  EXPECT_FALSE(Diags.isSuppressed());
  EXPECT_EQ(Diags.errorCount(), 0u);
}

TEST(DiagName, AllIdsHaveNames) {
  for (unsigned I = 0; I != static_cast<unsigned>(DiagId::NumDiags); ++I) {
    const char *N = diagName(static_cast<DiagId>(I));
    EXPECT_NE(std::string(N), "unknown") << "DiagId " << I;
  }
}

} // namespace
