//===- ServerTest.cpp - vaultd dispatch, admission, soft-fail -------------===//
//
// In-process tests of the check server's session layer: request
// dispatch and its error paths, the buffer overlay, the warm memory
// cache shared across sessions, the admission gate's three outcomes,
// and the soft-fail guarantee that no request — however malformed —
// kills the session.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include "support/Json.h"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>

using namespace vault;
using namespace vault::server;

namespace {

const char *Prelude = R"(interface REGION {
  type region;
  tracked(R) region create() [new R];
  void delete(tracked(R) region) [-R];
}
extern module Region : REGION;
)";

std::string libText() {
  return std::string(Prelude) +
         "void lib_ok(int n) {\n"
         "  tracked region rgn = Region.create();\n"
         "  Region.delete(rgn);\n"
         "}\n";
}

std::string mainText(int Arg) {
  return "void lib_ok(int n);\n"
         "void main() {\n"
         "  lib_ok(" + std::to_string(Arg) + ");\n"
         "}\n";
}

/// Sends one request line and parses the response, asserting the
/// envelope invariants every response must satisfy: a single line of
/// valid JSON with the JSON-RPC marker.
json::Value send(Workspace &Ws, const std::string &Line) {
  std::string R = Ws.handleLine(Line);
  EXPECT_EQ(R.find('\n'), std::string::npos) << R;
  std::string Err;
  std::optional<json::Value> V = json::parseJson(R, &Err);
  EXPECT_TRUE(V.has_value()) << R << "\n" << Err;
  if (!V)
    return {};
  const json::Value *Rpc = V->find("jsonrpc");
  EXPECT_TRUE(Rpc && Rpc->Str == "2.0") << R;
  EXPECT_TRUE(V->find("result") || V->find("error")) << R;
  return *V;
}

int errorCode(const json::Value &Resp) {
  const json::Value *E = Resp.find("error");
  if (!E)
    return 0;
  const json::Value *C = E->find("code");
  return C ? static_cast<int>(C->Num) : 0;
}

std::string openRequest(int Id, const std::string &Name,
                        const std::string &Text, bool Change = false) {
  return "{\"jsonrpc\": \"2.0\", \"id\": " + std::to_string(Id) +
         ", \"method\": \"" + (Change ? "change" : "open") +
         "\", \"params\": {\"name\": " + json::str(Name) +
         ", \"text\": " + json::str(Text) + "}}";
}

struct Fixture {
  Config Cfg;
  Admission Gate{8, 30000};
  CheckMemoryStore Store;
  Workspace Ws{Cfg, Gate, Store};
};

TEST(ServerDispatch, OpenCheckStatsShutdown) {
  Fixture F;
  json::Value R = send(F.Ws, openRequest(1, "lib.vlt", libText()));
  ASSERT_TRUE(R.find("result"));
  EXPECT_EQ(R.find("result")->find("buffers")->Num, 1);

  send(F.Ws, openRequest(2, "main.vlt", mainText(1)));
  ASSERT_EQ(F.Ws.buffers().size(), 2u);

  R = send(F.Ws, "{\"jsonrpc\": \"2.0\", \"id\": 3, \"method\": \"check\"}");
  const json::Value *Res = R.find("result");
  ASSERT_TRUE(Res);
  EXPECT_TRUE(Res->find("ok")->B);
  EXPECT_EQ(Res->find("errors")->Num, 0);
  EXPECT_GE(Res->find("flowChecksRun")->Num, 1);
  // The embedded renderer documents are themselves valid JSON.
  std::string Err;
  EXPECT_TRUE(json::parseJson(Res->find("diagnostics")->Str, &Err)) << Err;
  EXPECT_TRUE(json::parseJson(Res->find("stats")->Str, &Err)) << Err;

  R = send(F.Ws, "{\"jsonrpc\": \"2.0\", \"id\": 4, \"method\": \"stats\"}");
  Res = R.find("result");
  ASSERT_TRUE(Res);
  EXPECT_EQ(Res->find("checks")->Num, 1);
  EXPECT_EQ(Res->find("buffersOpen")->Num, 2);
  EXPECT_GE(Res->find("cacheEntries")->Num, 1);
  ASSERT_TRUE(Res->find("lastCheck")->isObject());
  EXPECT_GE(Res->find("lastCheck")->find("flowChecksRun")->Num, 1);

  EXPECT_FALSE(F.Ws.shutdownRequested());
  R = send(F.Ws, "{\"jsonrpc\": \"2.0\", \"id\": 5, \"method\": \"shutdown\"}");
  EXPECT_TRUE(R.find("result")->find("shuttingDown")->B);
  EXPECT_TRUE(F.Ws.shutdownRequested());
}

TEST(ServerDispatch, WarmStoreSkipsUntouchedFunctions) {
  // The daemon's core property at unit scale: a second check against
  // the warm store replays every flow check.
  Fixture F;
  send(F.Ws, openRequest(1, "lib.vlt", libText()));
  send(F.Ws, openRequest(2, "main.vlt", mainText(1)));
  json::Value Cold =
      send(F.Ws, "{\"jsonrpc\": \"2.0\", \"id\": 3, \"method\": \"check\"}");
  EXPECT_GE(Cold.find("result")->find("flowChecksRun")->Num, 2);
  EXPECT_EQ(Cold.find("result")->find("cacheHits")->Num, 0);

  json::Value Warm =
      send(F.Ws, "{\"jsonrpc\": \"2.0\", \"id\": 4, \"method\": \"check\"}");
  EXPECT_EQ(Warm.find("result")->find("flowChecksRun")->Num, 0);
  EXPECT_GE(Warm.find("result")->find("cacheHits")->Num, 2);
  // Diagnostics replay byte-identically.
  EXPECT_EQ(Cold.find("result")->find("diagnostics")->Str,
            Warm.find("result")->find("diagnostics")->Str);
}

TEST(ServerDispatch, WarmStoreIsSharedAcrossSessions) {
  // A new connection (fresh Workspace, same store) starts warm — the
  // daemon's whole reason to exist.
  Config Cfg;
  Admission Gate(8, 30000);
  CheckMemoryStore Store;
  {
    Workspace First(Cfg, Gate, Store);
    send(First, openRequest(1, "lib.vlt", libText()));
    send(First, openRequest(2, "main.vlt", mainText(1)));
    send(First, "{\"jsonrpc\": \"2.0\", \"id\": 3, \"method\": \"check\"}");
  }
  EXPECT_GE(Store.entryCount(), 2u);
  Workspace Second(Cfg, Gate, Store);
  send(Second, openRequest(1, "lib.vlt", libText()));
  send(Second, openRequest(2, "main.vlt", mainText(1)));
  json::Value R =
      send(Second, "{\"jsonrpc\": \"2.0\", \"id\": 4, \"method\": \"check\"}");
  EXPECT_EQ(R.find("result")->find("flowChecksRun")->Num, 0);
}

TEST(ServerDispatch, ChangeDirtiesOnlyTheEditedFunction) {
  Fixture F;
  send(F.Ws, openRequest(1, "lib.vlt", libText()));
  send(F.Ws, openRequest(2, "main.vlt", mainText(1)));
  send(F.Ws, "{\"jsonrpc\": \"2.0\", \"id\": 3, \"method\": \"check\"}");

  send(F.Ws, openRequest(4, "main.vlt", mainText(2), /*Change=*/true));
  json::Value R =
      send(F.Ws, "{\"jsonrpc\": \"2.0\", \"id\": 5, \"method\": \"check\"}");
  const json::Value *Res = R.find("result");
  ASSERT_TRUE(Res);
  // Only main() was dirtied; lib_ok replays from the warm store.
  EXPECT_EQ(Res->find("flowChecksRun")->Num, 1);
  EXPECT_GE(Res->find("cacheHits")->Num, 1);
  EXPECT_EQ(Res->find("cacheInvalidated")->Num, 1);
}

TEST(ServerDispatch, BufferLifecycleErrors) {
  Fixture F;
  send(F.Ws, openRequest(1, "a.vlt", "void main() {\n}\n"));
  EXPECT_EQ(errorCode(send(F.Ws, openRequest(2, "a.vlt", "x"))),
            InvalidParams); // Duplicate open.
  EXPECT_EQ(errorCode(send(F.Ws, openRequest(3, "b.vlt", "x", true))),
            InvalidParams); // Change of an unknown buffer.
  EXPECT_EQ(errorCode(send(F.Ws,
                           "{\"jsonrpc\": \"2.0\", \"id\": 4, \"method\": "
                           "\"close\", \"params\": {\"name\": \"b.vlt\"}}")),
            InvalidParams); // Close of an unknown buffer.
  json::Value R = send(F.Ws,
                       "{\"jsonrpc\": \"2.0\", \"id\": 5, \"method\": "
                       "\"close\", \"params\": {\"name\": \"a.vlt\"}}");
  EXPECT_EQ(R.find("result")->find("buffers")->Num, 0);
  EXPECT_TRUE(F.Ws.buffers().empty());
}

TEST(ServerDispatch, MalformedRequestsGetStructuredErrors) {
  Fixture F;
  EXPECT_EQ(errorCode(send(F.Ws, "this is not json")), ParseError);
  EXPECT_EQ(errorCode(send(F.Ws, "{\"truncated")), ParseError);
  EXPECT_EQ(errorCode(send(F.Ws, "\"\xC3\x28\"")), ParseError); // Bad UTF-8.
  EXPECT_EQ(errorCode(send(F.Ws, "[1, 2, 3]")), InvalidRequest);
  EXPECT_EQ(errorCode(send(F.Ws, "{\"id\": 9}")), InvalidRequest);
  EXPECT_EQ(errorCode(send(F.Ws, "{\"method\": 42}")), InvalidRequest);
  EXPECT_EQ(errorCode(send(F.Ws,
                           "{\"id\": 1, \"method\": \"open\", "
                           "\"params\": [1]}")),
            InvalidParams);
  EXPECT_EQ(errorCode(send(F.Ws, "{\"id\": 1, \"method\": \"frobnicate\"}")),
            MethodNotFound);
  // Parse errors cannot recover the id; it comes back null.
  json::Value R = send(F.Ws, "nope");
  EXPECT_TRUE(R.find("id")->isNull());
  // The session is still alive and serving.
  send(F.Ws, openRequest(10, "a.vlt", "void main() {\n}\n"));
  EXPECT_EQ(F.Ws.buffers().size(), 1u);
}

TEST(ServerDispatch, RequestIdsAreEchoedByType) {
  Fixture F;
  json::Value R = send(F.Ws, "{\"id\": 7, \"method\": \"stats\"}");
  EXPECT_EQ(R.find("id")->Num, 7);
  R = send(F.Ws, "{\"id\": \"req-a\", \"method\": \"stats\"}");
  EXPECT_EQ(R.find("id")->Str, "req-a");
  R = send(F.Ws, "{\"method\": \"stats\"}");
  EXPECT_TRUE(R.find("id")->isNull());
  R = send(F.Ws, "{\"id\": [1], \"method\": \"stats\"}");
  EXPECT_TRUE(R.find("id")->isNull()); // Unsupported id types map to null.
}

TEST(ServerDispatch, CheckJobsParamValidated) {
  Fixture F;
  send(F.Ws, openRequest(1, "a.vlt", "void main() {\n}\n"));
  auto Check = [](const char *Jobs) {
    return std::string("{\"id\": 2, \"method\": \"check\", \"params\": "
                       "{\"jobs\": ") +
           Jobs + "}}";
  };
  EXPECT_EQ(errorCode(send(F.Ws, Check("-1"))), InvalidParams);
  EXPECT_EQ(errorCode(send(F.Ws, Check("2.5"))), InvalidParams);
  EXPECT_EQ(errorCode(send(F.Ws, Check("\"4\""))), InvalidParams);
  EXPECT_EQ(errorCode(send(F.Ws, Check("70000"))), InvalidParams);
  json::Value R = send(F.Ws, Check("4"));
  ASSERT_TRUE(R.find("result"));
  EXPECT_TRUE(R.find("result")->find("ok")->B);
}

TEST(ServerDispatch, OverflowFrameIsAStructuredError) {
  Config Cfg;
  Cfg.MaxFrameBytes = 64;
  Admission Gate(8, 30000);
  CheckMemoryStore Store;
  Workspace Ws(Cfg, Gate, Store);
  FrameReader::Frame F;
  F.K = FrameReader::Kind::Overflow;
  F.Line = "{\"method\": \"open\", ...";
  std::string R = Ws.handleFrame(F);
  std::string Err;
  std::optional<json::Value> V = json::parseJson(R, &Err);
  ASSERT_TRUE(V.has_value()) << R;
  EXPECT_EQ(errorCode(*V), FrameTooLarge);
  EXPECT_TRUE(V->find("id")->isNull());
}

TEST(ServerDispatch, OversizedLineViaHandleLine) {
  Config Cfg;
  Cfg.MaxFrameBytes = 32;
  Admission Gate(8, 30000);
  CheckMemoryStore Store;
  Workspace Ws(Cfg, Gate, Store);
  // handleLine applies the same byte ceiling through the JSON parser.
  std::string Long = "{\"method\": \"" + std::string(100, 'x') + "\"}";
  std::string R = Ws.handleLine(Long);
  std::string Err;
  std::optional<json::Value> V = json::parseJson(R, &Err);
  ASSERT_TRUE(V.has_value()) << R;
  EXPECT_EQ(errorCode(*V), ParseError);
}

//===----------------------------------------------------------------------===//
// Admission
//===----------------------------------------------------------------------===//

/// Occupies the gate from a helper thread until released.
struct GateHolder {
  explicit GateHolder(Admission &Gate) {
    T = std::thread([this, &Gate] {
      Outcome = Gate.run([this] {
        std::unique_lock<std::mutex> Lock(Mu);
        Held = true;
        Cv.notify_all();
        Cv.wait(Lock, [this] { return Release; });
      });
    });
    std::unique_lock<std::mutex> Lock(Mu);
    Cv.wait(Lock, [this] { return Held; });
  }
  ~GateHolder() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Release = true;
    }
    Cv.notify_all();
    T.join();
  }
  std::mutex Mu;
  std::condition_variable Cv;
  bool Held = false, Release = false;
  Admission::Outcome Outcome = Admission::Outcome::Ran;
  std::thread T;
};

TEST(Admission, RunsImmediatelyWhenIdle) {
  Admission Gate(0, 10);
  bool Ran = false;
  EXPECT_EQ(Gate.run([&] { Ran = true; }), Admission::Outcome::Ran);
  EXPECT_TRUE(Ran);
}

TEST(Admission, SaturatesWhenQueueIsFull) {
  Admission Gate(0, 10000); // Zero waiters allowed.
  GateHolder Holder(Gate);
  bool Ran = false;
  EXPECT_EQ(Gate.run([&] { Ran = true; }), Admission::Outcome::Saturated);
  EXPECT_FALSE(Ran);
}

TEST(Admission, TimesOutWaitingForTheSlot) {
  Admission Gate(4, 30); // Waiting allowed, but not for long.
  GateHolder Holder(Gate);
  bool Ran = false;
  EXPECT_EQ(Gate.run([&] { Ran = true; }), Admission::Outcome::TimedOut);
  EXPECT_FALSE(Ran);
}

TEST(Admission, WaiterRunsOnceTheSlotFrees) {
  Admission Gate(4, 30000);
  std::mutex Mu;
  std::condition_variable Cv;
  bool Held = false, Release = false;
  std::thread Holder([&] {
    Gate.run([&] {
      std::unique_lock<std::mutex> Lock(Mu);
      Held = true;
      Cv.notify_all();
      Cv.wait(Lock, [&] { return Release; });
    });
  });
  {
    std::unique_lock<std::mutex> Lock(Mu);
    Cv.wait(Lock, [&] { return Held; });
  }
  Admission::Outcome Waited = Admission::Outcome::Saturated;
  bool Ran = false;
  std::thread Waiter([&] { Waited = Gate.run([&] { Ran = true; }); });
  // Let the waiter queue up, then release the slot under it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Release = true;
  }
  Cv.notify_all();
  Holder.join();
  Waiter.join();
  EXPECT_EQ(Waited, Admission::Outcome::Ran);
  EXPECT_TRUE(Ran);
}

TEST(Admission, SlotSurvivesAThrowingBody) {
  Admission Gate(0, 10);
  EXPECT_THROW(Gate.run([] { throw std::runtime_error("boom"); }),
               std::runtime_error);
  bool Ran = false;
  EXPECT_EQ(Gate.run([&] { Ran = true; }), Admission::Outcome::Ran);
  EXPECT_TRUE(Ran);
}

TEST(Admission, SaturatedCheckRequestGetsTheRetryError) {
  Config Cfg;
  Cfg.MaxQueue = 0;
  Admission Gate(0, 10000);
  CheckMemoryStore Store;
  Workspace Ws(Cfg, Gate, Store);
  send(Ws, openRequest(1, "a.vlt", "void main() {\n}\n"));
  GateHolder Holder(Gate);
  json::Value R = send(Ws, "{\"id\": 2, \"method\": \"check\"}");
  EXPECT_EQ(errorCode(R), Saturated);
  json::Value Stats = send(Ws, "{\"id\": 3, \"method\": \"stats\"}");
  EXPECT_EQ(Stats.find("result")->find("rejected")->Num, 1);
}

TEST(Admission, TimedOutCheckRequestGetsTheTimeoutError) {
  Config Cfg;
  Cfg.RequestTimeoutMs = 30;
  Admission Gate(4, 30);
  CheckMemoryStore Store;
  Workspace Ws(Cfg, Gate, Store);
  send(Ws, openRequest(1, "a.vlt", "void main() {\n}\n"));
  GateHolder Holder(Gate);
  json::Value R = send(Ws, "{\"id\": 2, \"method\": \"check\"}");
  EXPECT_EQ(errorCode(R), TimedOut);
  json::Value Stats = send(Ws, "{\"id\": 3, \"method\": \"stats\"}");
  EXPECT_EQ(Stats.find("result")->find("timedOut")->Num, 1);
}

} // namespace
