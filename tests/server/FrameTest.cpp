//===- FrameTest.cpp - Newline-delimited frame extraction -----------------===//
//
// FrameReader turns arbitrary transport chunks into complete request
// lines. The interesting behavior is at the seams: frames split across
// feeds, several frames in one feed, and the overflow path, where an
// oversized line must stream through in constant space and surface as
// exactly one Overflow frame without desynchronizing the frames that
// follow it.
//
//===----------------------------------------------------------------------===//

#include "server/Frame.h"

#include <gtest/gtest.h>

using namespace vault::server;

namespace {

using Kind = FrameReader::Kind;

/// Drains every complete frame, appending "O:<line>" for Ok frames and
/// "X:<prefix>" for Overflow frames.
std::vector<std::string> drain(FrameReader &R) {
  std::vector<std::string> Out;
  for (;;) {
    FrameReader::Frame F = R.next();
    if (F.K == Kind::None)
      return Out;
    Out.push_back((F.K == Kind::Ok ? "O:" : "X:") + F.Line);
  }
}

TEST(FrameReader, SplitsLinesAndStripsTerminators) {
  FrameReader R(1024);
  R.feed("alpha\nbeta\n");
  EXPECT_EQ(drain(R), (std::vector<std::string>{"O:alpha", "O:beta"}));
  EXPECT_TRUE(R.idle());
}

TEST(FrameReader, FramesSplitAcrossFeeds) {
  FrameReader R(1024);
  R.feed("hel");
  EXPECT_EQ(R.next().K, Kind::None);
  EXPECT_FALSE(R.idle());
  R.feed("lo\nwor");
  EXPECT_EQ(drain(R), (std::vector<std::string>{"O:hello"}));
  R.feed("ld\n");
  EXPECT_EQ(drain(R), (std::vector<std::string>{"O:world"}));
  EXPECT_TRUE(R.idle());
}

TEST(FrameReader, ByteAtATimeFeeding) {
  FrameReader R(1024);
  std::string In = "a\n\nbc\n";
  std::vector<std::string> Got;
  for (char C : In) {
    R.feed(std::string_view(&C, 1));
    for (const std::string &F : drain(R))
      Got.push_back(F);
  }
  EXPECT_EQ(Got, (std::vector<std::string>{"O:a", "O:", "O:bc"}));
}

TEST(FrameReader, EmptyLinesAreFrames) {
  FrameReader R(1024);
  R.feed("\n\n");
  EXPECT_EQ(drain(R), (std::vector<std::string>{"O:", "O:"}));
}

TEST(FrameReader, CarriageReturnIsPreserved) {
  // The framing is '\n'-delimited; a CRLF client's '\r' stays in the
  // line (the JSON parser treats it as whitespace).
  FrameReader R(1024);
  R.feed("{}\r\n");
  EXPECT_EQ(drain(R), (std::vector<std::string>{"O:{}\r"}));
}

TEST(FrameReader, CompleteOversizedLineOverflows) {
  FrameReader R(8);
  R.feed("0123456789abcdef\nok\n");
  std::vector<std::string> Got = drain(R);
  ASSERT_EQ(Got.size(), 2u);
  EXPECT_EQ(Got[0], "X:0123456789abcdef"); // Whole line < prefix cap.
  EXPECT_EQ(Got[1], "O:ok");
}

TEST(FrameReader, EndlessLineDiscardsInConstantSpace) {
  // A line far past the limit, fed in chunks with no newline: the
  // reader must not buffer it. We can't observe memory directly, but
  // the prefix cap (48 bytes) pins that only a prefix was kept.
  FrameReader R(16);
  std::string Chunk(1000, 'x');
  for (int I = 0; I < 50; ++I) {
    R.feed(Chunk);
    EXPECT_EQ(R.next().K, Kind::None); // Frame not closed yet.
  }
  R.feed("tail\nnext\n");
  FrameReader::Frame F = R.next();
  EXPECT_EQ(F.K, Kind::Overflow);
  EXPECT_EQ(F.Line, std::string(48, 'x'));
  EXPECT_EQ(drain(R), (std::vector<std::string>{"O:next"}));
  EXPECT_TRUE(R.idle());
}

TEST(FrameReader, ExactlyOneOverflowFramePerOversizedLine) {
  FrameReader R(4);
  R.feed(std::string(100, 'a'));
  EXPECT_EQ(R.next().K, Kind::None);
  R.feed(std::string(100, 'a') + "\n");
  std::vector<std::string> Got = drain(R);
  ASSERT_EQ(Got.size(), 1u);
  EXPECT_EQ(Got[0], "X:" + std::string(48, 'a')); // 48-byte prefix cap.
}

TEST(FrameReader, OverflowNewlineSplitFromItsLine) {
  FrameReader R(4);
  R.feed("toolongline");
  EXPECT_EQ(R.next().K, Kind::None);
  R.feed("\n");
  FrameReader::Frame F = R.next();
  EXPECT_EQ(F.K, Kind::Overflow);
  EXPECT_EQ(F.Line, "toolongline"); // Shorter than the 48-byte prefix cap.
  EXPECT_TRUE(R.idle());
}

TEST(FrameReader, LinesAfterOverflowInSameFeedSurvive) {
  FrameReader R(4);
  R.feed(std::string(64, 'z') + "\nfine\nalso\n");
  std::vector<std::string> Got = drain(R);
  ASSERT_EQ(Got.size(), 3u);
  EXPECT_EQ(Got[0].substr(0, 2), "X:");
  EXPECT_EQ(Got[1], "O:fine");
  EXPECT_EQ(Got[2], "O:also");
}

TEST(FrameReader, LineAtExactlyTheLimitIsOk) {
  FrameReader R(4);
  R.feed("abcd\nabcde\n");
  std::vector<std::string> Got = drain(R);
  ASSERT_EQ(Got.size(), 2u);
  EXPECT_EQ(Got[0], "O:abcd");
  EXPECT_EQ(Got[1].substr(0, 2), "X:");
}

} // namespace
