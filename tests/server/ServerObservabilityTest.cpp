//===- ServerObservabilityTest.cpp - logs, metrics, traces ----------------===//
//
// The observability contract of the check server: every structured log
// line is strict-parser-valid JSON matching the v1 schema, per-request
// counter deltas sum to the session's final stats, the metrics/health
// documents expose a deterministic key set regardless of job count or
// cache temperature, request spans land in the tracer tagged with
// session/request ids, and — the load-bearing guarantee — attaching
// telemetry never changes a single response byte outside the
// timing-valued stats histograms.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include "support/Json.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

using namespace vault;
using namespace vault::server;

namespace {

const char *Prelude = R"(interface REGION {
  type region;
  tracked(R) region create() [new R];
  void delete(tracked(R) region) [-R];
}
extern module Region : REGION;
)";

std::string libText() {
  return std::string(Prelude) +
         "void lib_ok(int n) {\n"
         "  tracked region rgn = Region.create();\n"
         "  Region.delete(rgn);\n"
         "}\n";
}

std::string mainText(int Arg) {
  return "void lib_ok(int n);\n"
         "void main() {\n"
         "  lib_ok(" + std::to_string(Arg) + ");\n"
         "}\n";
}

std::string openRequest(int Id, const std::string &Name,
                        const std::string &Text, bool Change = false) {
  return "{\"jsonrpc\": \"2.0\", \"id\": " + std::to_string(Id) +
         ", \"method\": \"" + (Change ? "change" : "open") +
         "\", \"params\": {\"name\": " + json::str(Name) +
         ", \"text\": " + json::str(Text) + "}}";
}

std::string rpc(int Id, const char *Method) {
  return "{\"jsonrpc\": \"2.0\", \"id\": " + std::to_string(Id) +
         ", \"method\": \"" + Method + "\"}";
}

/// Feeds a complete line through the frame-observation path (the one
/// vaultd uses), so requests hit the log/metrics/trace sinks.
std::string sendFramed(Workspace &Ws, const std::string &Line) {
  FrameReader::Frame F;
  F.K = FrameReader::Kind::Ok;
  F.Line = Line;
  return Ws.handleFrame(F);
}

json::Value parsed(const std::string &Doc) {
  std::string Err;
  std::optional<json::Value> V = json::parseJson(Doc, &Err);
  EXPECT_TRUE(V.has_value()) << Doc << "\n" << Err;
  return V ? *V : json::Value{};
}

/// A telemetry-enabled session whose log lands in a tmpfile the test
/// reads back after the workspace closes.
struct ObsFixture {
  Config Cfg;
  Admission Gate{8, 30000};
  CheckMemoryStore Store;
  ServerMetrics SM;
  std::FILE *LogFile = nullptr;
  std::unique_ptr<ServerLog> Log;
  Tracer Trc;
  std::unique_ptr<Workspace> Ws;

  explicit ObsFixture(unsigned Jobs = 1, uint64_t SlowMs = UINT64_MAX) {
    Cfg.Jobs = Jobs;
    LogFile = std::tmpfile();
    EXPECT_NE(LogFile, nullptr);
    Log = std::make_unique<ServerLog>(LogFile, /*Owned=*/false);
    Ws = std::make_unique<Workspace>(Cfg, Gate, Store);
    Telemetry Tel;
    Tel.Log = Log.get();
    Tel.Metrics = &SM;
    Tel.Trc = &Trc;
    Tel.SlowMs = SlowMs;
    Ws->setTelemetry(Tel);
  }

  ~ObsFixture() {
    // The workspace's destructor writes the session-close event, so it
    // must die before the log's backing file is closed.
    Ws.reset();
    if (LogFile)
      std::fclose(LogFile);
  }

  /// Destroys the workspace (emitting the session-close event) and
  /// returns every log line written so far.
  std::vector<std::string> closeAndReadLog() {
    Ws.reset();
    std::fflush(LogFile);
    std::rewind(LogFile);
    std::vector<std::string> Lines;
    std::string Cur;
    int C;
    while ((C = std::fgetc(LogFile)) != EOF) {
      if (C == '\n') {
        Lines.push_back(Cur);
        Cur.clear();
      } else {
        Cur.push_back(static_cast<char>(C));
      }
    }
    EXPECT_TRUE(Cur.empty()) << "torn trailing log line: " << Cur;
    return Lines;
  }
};

/// Runs the reference session: open two buffers, cold check, warm
/// check, edit, incremental check, one parse error, one oversized
/// frame, stats. Returns the stats response.
json::Value driveSession(ObsFixture &F) {
  sendFramed(*F.Ws, openRequest(1, "lib.vlt", libText()));
  sendFramed(*F.Ws, openRequest(2, "main.vlt", mainText(1)));
  sendFramed(*F.Ws, rpc(3, "check"));
  sendFramed(*F.Ws, rpc(4, "check"));
  sendFramed(*F.Ws, openRequest(5, "main.vlt", mainText(2), /*Change=*/true));
  sendFramed(*F.Ws, rpc(6, "check"));
  sendFramed(*F.Ws, "this is not json");
  FrameReader::Frame Big;
  Big.K = FrameReader::Kind::Overflow;
  Big.Line = "{\"jsonrpc\": \"2.0\", ";
  Big.Discarded = 9000;
  F.Ws->handleFrame(Big);
  return parsed(sendFramed(*F.Ws, rpc(7, "stats")));
}

//===----------------------------------------------------------------------===//
// Structured log schema
//===----------------------------------------------------------------------===//

TEST(ServerObservability, LogLinesParseStrictAndMatchSchema) {
  ObsFixture F;
  json::Value Stats = driveSession(F);
  std::vector<std::string> Lines = F.closeAndReadLog();
  ASSERT_GE(Lines.size(), 10u); // open + 8 requests + close.

  uint64_t RequestEvents = 0, SessionEvents = 0;
  uint64_t DeltaFlowChecks = 0, DeltaHits = 0, DeltaMisses = 0,
           DeltaInvalidated = 0, DeltaFunctions = 0;
  uint64_t LastRid = 0;
  for (const std::string &Line : Lines) {
    // Strict parse: the hardened request parser must accept every line
    // the server's own log emits.
    json::Value E = parsed(Line);
    ASSERT_TRUE(E.isObject()) << Line;
    ASSERT_TRUE(E.find("v")) << Line;
    EXPECT_EQ(E.find("v")->Num, ServerLog::SchemaVersion) << Line;
    ASSERT_TRUE(E.find("event") && E.find("event")->isString()) << Line;
    ASSERT_TRUE(E.find("ts_us") && E.find("ts_us")->isNumber()) << Line;
    ASSERT_TRUE(E.find("sid") && E.find("sid")->isNumber()) << Line;
    EXPECT_EQ(E.find("sid")->Num, 1);

    const std::string &Kind = E.find("event")->Str;
    if (Kind == "session") {
      ++SessionEvents;
      ASSERT_TRUE(E.find("phase")) << Line;
    } else if (Kind == "request") {
      ++RequestEvents;
      for (const char *Key : {"rid", "method", "outcome", "queue_wait_us",
                              "handle_us", "bytes_in", "bytes_out"})
        ASSERT_TRUE(E.find(Key)) << Key << " missing: " << Line;
      // Request ids are strictly increasing within the session.
      EXPECT_GT(E.find("rid")->Num, LastRid) << Line;
      LastRid = static_cast<uint64_t>(E.find("rid")->Num);
      const std::string &Outcome = E.find("outcome")->Str;
      EXPECT_TRUE(Outcome == "ok" || Outcome == "error") << Line;
      if (Outcome == "error")
        ASSERT_TRUE(E.find("code")) << Line;
      if (E.find("flow_checks_run")) {
        DeltaFlowChecks += E.find("flow_checks_run")->Num;
        DeltaHits += E.find("cache_hits")->Num;
        DeltaMisses += E.find("cache_misses")->Num;
        DeltaInvalidated += E.find("cache_invalidated")->Num;
        DeltaFunctions += E.find("functions_checked")->Num;
      }
    } else {
      EXPECT_TRUE(Kind == "admission" || Kind == "slow_request") << Line;
    }
  }
  EXPECT_EQ(SessionEvents, 2u); // open + close.
  EXPECT_EQ(RequestEvents, 9u);

  // The per-request deltas sum to exactly the session's final totals.
  const json::Value *Totals = Stats.find("result")->find("totals");
  ASSERT_TRUE(Totals);
  EXPECT_EQ(Totals->find("flowChecksRun")->Num, DeltaFlowChecks);
  EXPECT_EQ(Totals->find("cacheHits")->Num, DeltaHits);
  EXPECT_EQ(Totals->find("cacheMisses")->Num, DeltaMisses);
  EXPECT_EQ(Totals->find("cacheInvalidated")->Num, DeltaInvalidated);
  EXPECT_EQ(Totals->find("functionsChecked")->Num, DeltaFunctions);
  // Three checks ran; the warm one must have hit the cache.
  EXPECT_GE(DeltaFlowChecks, 2u);
  EXPECT_GE(DeltaHits, 2u);
}

TEST(ServerObservability, SlowThresholdEmitsSlowRequestEvents) {
  ObsFixture F(/*Jobs=*/1, /*SlowMs=*/0); // Everything is "slow" at 0ms.
  sendFramed(*F.Ws, rpc(1, "stats"));
  std::vector<std::string> Lines = F.closeAndReadLog();
  bool SawSlow = false;
  for (const std::string &Line : Lines) {
    json::Value E = parsed(Line);
    if (E.find("event")->Str == "slow_request") {
      SawSlow = true;
      ASSERT_TRUE(E.find("handle_us"));
      ASSERT_TRUE(E.find("threshold_ms"));
      EXPECT_EQ(E.find("threshold_ms")->Num, 0);
    }
  }
  EXPECT_TRUE(SawSlow);
}

TEST(ServerObservability, FrameRejectsReachStatsAndMetrics) {
  ObsFixture F;
  json::Value Stats = driveSession(F);
  const json::Value *Res = Stats.find("result");
  ASSERT_TRUE(Res);
  EXPECT_EQ(Res->find("framesRejected")->Num, 1);
  EXPECT_EQ(Res->find("bytesDiscarded")->Num, 9000);
  EXPECT_EQ(F.SM.counter("server.frames.overflow"), 1u);
  EXPECT_EQ(F.SM.counter("server.frames.discarded_bytes"), 9000u);
  // And the reader itself counts what it rejected.
  FrameReader R(32);
  R.feed(std::string(100, 'x') + "\n{\"a\": 1}\n");
  FrameReader::Frame First = R.next();
  EXPECT_EQ(First.K, FrameReader::Kind::Overflow);
  EXPECT_EQ(First.Line.size() + First.Discarded, 100u);
  EXPECT_EQ(R.overflowFrames(), 1u);
  EXPECT_EQ(R.discardedBytes(), First.Discarded);
  EXPECT_EQ(R.next().K, FrameReader::Kind::Ok);
}

//===----------------------------------------------------------------------===//
// Metrics and health key-set determinism
//===----------------------------------------------------------------------===//

std::set<std::string> counterKeys(const std::string &MetricsDoc) {
  json::Value Doc = parsed(MetricsDoc);
  std::set<std::string> Keys;
  const json::Value *Counters = Doc.find("counters");
  if (Counters)
    for (const auto &[K, V] : Counters->Members)
      Keys.insert(K);
  const json::Value *Hists = Doc.find("histograms");
  if (Hists)
    for (const auto &[K, V] : Hists->Members)
      Keys.insert("hist:" + K);
  return Keys;
}

std::set<std::string> topLevelKeys(const json::Value &Obj) {
  std::set<std::string> Keys;
  for (const auto &[K, V] : Obj.Members)
    Keys.insert(K);
  return Keys;
}

TEST(ServerObservability, MetricsKeySetIsTrafficJobAndCacheInvariant) {
  // A freshly constructed aggregator already exposes the full key set…
  std::set<std::string> ColdKeys = counterKeys(ServerMetrics().renderJson());
  EXPECT_TRUE(ColdKeys.count("server.requests.check"));
  EXPECT_TRUE(ColdKeys.count("server.errors.parse_error"));
  EXPECT_TRUE(ColdKeys.count("hist:server.request_us"));

  // …and traffic at any job count or cache temperature never adds or
  // removes a key.
  for (unsigned Jobs : {1u, 4u}) {
    ObsFixture F(Jobs);
    driveSession(F);
    json::Value Cold =
        parsed(sendFramed(*F.Ws, rpc(100, "metrics")));
    driveSession(F); // Second pass: everything warm.
    json::Value Warm =
        parsed(sendFramed(*F.Ws, rpc(101, "metrics")));
    for (const json::Value *Resp : {&Cold, &Warm}) {
      const json::Value *Res = Resp->find("result");
      ASSERT_TRUE(Res);
      EXPECT_EQ(counterKeys(Res->find("metrics")->Str), ColdKeys);
    }
  }
}

TEST(ServerObservability, HealthKeySetAndGateCounters) {
  ObsFixture F;
  json::Value H = parsed(sendFramed(*F.Ws, rpc(1, "health")));
  const json::Value *Res = H.find("result");
  ASSERT_TRUE(Res);
  std::set<std::string> Expect = {
      "status",        "uptimeMs", "busy",           "queueDepth",
      "peakQueueDepth", "maxQueue", "requestTimeoutMs", "sessionsOpen",
      "buffersOpen"};
  EXPECT_EQ(topLevelKeys(*Res), Expect);
  EXPECT_EQ(Res->find("status")->Str, "ok");
  EXPECT_EQ(Res->find("sessionsOpen")->Num, 1);
  EXPECT_EQ(Res->find("maxQueue")->Num, 8);

  driveSession(F);
  json::Value H2 = parsed(sendFramed(*F.Ws, rpc(2, "health")));
  EXPECT_EQ(topLevelKeys(*H2.find("result")), Expect);
}

TEST(ServerObservability, MetricsMethodWithoutAggregatorIsStructuredError) {
  Config Cfg;
  Admission Gate{8, 30000};
  CheckMemoryStore Store;
  Workspace Ws(Cfg, Gate, Store);
  json::Value R = parsed(Ws.handleLine(rpc(1, "metrics")));
  ASSERT_TRUE(R.find("error"));
  EXPECT_EQ(R.find("error")->find("code")->Num, InternalError);
  // health still answers: it reads the gate, not the aggregator.
  json::Value H = parsed(Ws.handleLine(rpc(2, "health")));
  ASSERT_TRUE(H.find("result"));
  EXPECT_EQ(H.find("result")->find("uptimeMs")->Num, 0);
}

//===----------------------------------------------------------------------===//
// Byte identity with telemetry on
//===----------------------------------------------------------------------===//

/// The deterministic prefix of a check response: everything before the
/// embedded stats document, whose wall-clock histograms are the one
/// legitimately timing-dependent portion of the bytes.
std::string deterministicPrefix(const std::string &Resp) {
  size_t At = Resp.find(", \"stats\": ");
  EXPECT_NE(At, std::string::npos) << Resp;
  return Resp.substr(0, At);
}

TEST(ServerObservability, TelemetryNeverChangesResponseBytes) {
  // Two sessions play the identical script; one is fully instrumented,
  // one is bare. Every response outside the stats histograms must be
  // byte-identical, cold and warm.
  ObsFixture Instrumented;
  Config Cfg;
  Admission Gate{8, 30000};
  CheckMemoryStore Store;
  Workspace Bare(Cfg, Gate, Store);

  std::vector<std::string> Script = {
      openRequest(1, "lib.vlt", libText()),
      openRequest(2, "main.vlt", mainText(1)),
      rpc(3, "check"), // Cold.
      rpc(4, "check"), // Warm.
      openRequest(5, "main.vlt", mainText(2), /*Change=*/true),
      rpc(6, "check"), // Incremental.
      "not json at all",
      rpc(7, "close"), // InvalidParams error path.
  };
  for (const std::string &Line : Script) {
    std::string WithTel = sendFramed(*Instrumented.Ws, Line);
    std::string Without = Bare.handleLine(Line);
    if (WithTel.find("\"stats\": ") != std::string::npos) {
      EXPECT_EQ(deterministicPrefix(WithTel), deterministicPrefix(Without))
          << Line;
    } else {
      EXPECT_EQ(WithTel, Without) << Line;
    }
  }
}

//===----------------------------------------------------------------------===//
// Request-scoped tracing
//===----------------------------------------------------------------------===//

TEST(ServerObservability, RequestSpansCarrySessionAndRequestIds) {
  ObsFixture F;
  driveSession(F);
  std::string TraceDoc = F.Trc.json();
  json::Value Doc = parsed(TraceDoc);
  const json::Value *Events = Doc.find("traceEvents");
  ASSERT_TRUE(Events && Events->isArray());

  uint64_t RequestSpans = 0, CheckSpans = 0, PassSpans = 0;
  for (const json::Value &E : Events->Elems) {
    const json::Value *Name = E.find("name");
    ASSERT_TRUE(Name);
    const json::Value *Args = E.find("args");
    if (Name->Str == "request") {
      ++RequestSpans;
      ASSERT_TRUE(Args);
      ASSERT_TRUE(Args->find("sid"));
      ASSERT_TRUE(Args->find("rid"));
      ASSERT_TRUE(Args->find("method"));
      ASSERT_TRUE(Args->find("outcome"));
      EXPECT_EQ(Args->find("sid")->Str, "1");
    } else if (Name->Str == "check") {
      ++CheckSpans;
      ASSERT_TRUE(Args && Args->find("rid"));
    } else if (Name->Str == "flow-check" || Name->Str == "parse-sources") {
      ++PassSpans;
    }
  }
  // One request span per frame, one check span per admitted check, and
  // the compiler's own pass spans nested in the same tracer.
  EXPECT_EQ(RequestSpans, 9u);
  EXPECT_EQ(CheckSpans, 3u);
  EXPECT_GE(PassSpans, 3u);
}

TEST(ServerObservability, SpanInventoryIsJobAndWarmthInvariant) {
  auto NameSet = [](ObsFixture &F) {
    std::set<std::string> Names;
    json::Value Doc = parsed(F.Trc.json());
    for (const json::Value &E : Doc.find("traceEvents")->Elems)
      Names.insert(E.find("name")->Str);
    return Names;
  };
  ObsFixture A(/*Jobs=*/1), B(/*Jobs=*/4);
  driveSession(A);
  driveSession(B);
  driveSession(B); // Warm second pass must add no new span kinds.
  std::set<std::string> NamesA = NameSet(A), NamesB = NameSet(B);
  EXPECT_EQ(NamesA, NamesB);
  EXPECT_TRUE(NamesA.count("request"));
  EXPECT_TRUE(NamesA.count("check"));
}

} // namespace
