//===- FrameFuzzTest.cpp - byte-mutation fuzzing of the frame path --------===//
//
// Drives the server's full request path — FrameReader, the hardened
// JSON parser, dispatch — with thousands of byte-mutated variants of
// valid request lines, using the same SplitMix64 mutation idiom as the
// program generator. The invariant under test is the soft-fail
// contract: every frame, however mangled, produces exactly one
// response line that is itself valid JSON carrying "result" or
// "error", and the session survives to serve the next request.
//
// Reduced crashers live on as pins under tests/regress/frames/; each
// must keep producing a structured error.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include "fuzz/Fuzz.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace vault;
using namespace vault::server;

namespace fs = std::filesystem;

namespace {

/// Seed corpus: one valid line per request kind, kept small so the
/// occasional mutant that stays well-formed checks quickly.
std::vector<std::string> seedLines() {
  return {
      "{\"jsonrpc\": \"2.0\", \"id\": 1, \"method\": \"open\", \"params\": "
      "{\"name\": \"a.vlt\", \"text\": \"void main() {\\n}\\n\"}}",
      "{\"jsonrpc\": \"2.0\", \"id\": 2, \"method\": \"change\", \"params\": "
      "{\"name\": \"a.vlt\", \"text\": \"void main() { int x = 1; }\\n\"}}",
      "{\"jsonrpc\": \"2.0\", \"id\": 3, \"method\": \"check\", \"params\": "
      "{\"jobs\": 1}}",
      "{\"jsonrpc\": \"2.0\", \"id\": 4, \"method\": \"stats\"}",
      "{\"jsonrpc\": \"2.0\", \"id\": \"s-5\", \"method\": \"close\", "
      "\"params\": {\"name\": \"a.vlt\"}}",
  };
}

/// One round of the generator's byte-mutation idiom.
std::string mutate(std::string Line, fuzz::Rng &Rng) {
  unsigned Edits = 1 + static_cast<unsigned>(Rng.below(4));
  for (unsigned I = 0; I != Edits && !Line.empty(); ++I) {
    switch (Rng.below(5)) {
    case 0: // Flip a byte to anything.
      Line[Rng.below(Line.size())] =
          static_cast<char>(Rng.below(256));
      break;
    case 1: // Insert a byte.
      Line.insert(Line.begin() + static_cast<ptrdiff_t>(
                                     Rng.below(Line.size() + 1)),
                  static_cast<char>(Rng.below(256)));
      break;
    case 2: // Delete a byte.
      Line.erase(Line.begin() + static_cast<ptrdiff_t>(
                                    Rng.below(Line.size())));
      break;
    case 3: // Truncate.
      Line.resize(Rng.below(Line.size() + 1));
      break;
    case 4: { // Duplicate a chunk somewhere else.
      size_t From = Rng.below(Line.size());
      size_t Len = std::min<size_t>(1 + Rng.below(8), Line.size() - From);
      Line.insert(Rng.below(Line.size() + 1), Line.substr(From, Len));
      break;
    }
    }
  }
  return Line;
}

/// Every response must be one line of valid JSON with a result or an
/// error — the soft-fail contract.
void expectWellFormedResponse(const std::string &Resp,
                              const std::string &Input) {
  ASSERT_FALSE(Resp.empty()) << "no response for: " << Input;
  EXPECT_EQ(Resp.find('\n'), std::string::npos) << Resp;
  std::string Err;
  std::optional<json::Value> V = json::parseJson(Resp, &Err);
  ASSERT_TRUE(V.has_value())
      << "unparseable response \"" << Resp << "\" (" << Err
      << ") for input: " << Input;
  EXPECT_TRUE(V->isObject());
  EXPECT_TRUE(V->find("result") || V->find("error")) << Resp;
}

TEST(FrameFuzz, MutatedFramesNeverKillTheSession) {
  Config Cfg;
  Cfg.MaxFrameBytes = 1u << 16;
  Admission Gate(8, 30000);
  CheckMemoryStore Store;
  Workspace Ws(Cfg, Gate, Store);

  std::vector<std::string> Seeds = seedLines();
  fuzz::Rng Rng(20260808);
  for (unsigned I = 0; I != 1500; ++I) {
    std::string Mutant = mutate(Seeds[I % Seeds.size()], Rng);
    // A mutation can introduce '\n': then the mutant is several
    // frames. Route it through the real framing layer either way.
    FrameReader Frames(Cfg.MaxFrameBytes);
    Frames.feed(Mutant);
    Frames.feed("\n");
    for (;;) {
      FrameReader::Frame F = Frames.next();
      if (F.K == FrameReader::Kind::None)
        break;
      expectWellFormedResponse(Ws.handleFrame(F), Mutant);
    }
  }
  // The session survived 1500 rounds of garbage and still serves.
  std::string Resp = Ws.handleLine("{\"id\": 99, \"method\": \"stats\"}");
  std::string Err;
  std::optional<json::Value> V = json::parseJson(Resp, &Err);
  ASSERT_TRUE(V.has_value()) << Resp;
  EXPECT_TRUE(V->find("result"));
}

TEST(FrameFuzz, ChunkedDeliveryIsEquivalent) {
  // The same mutants, fed one byte at a time through the reader, must
  // produce the same frame sequence (and thus the same responses).
  std::vector<std::string> Seeds = seedLines();
  fuzz::Rng Rng(777);
  for (unsigned I = 0; I != 200; ++I) {
    std::string Mutant = mutate(Seeds[I % Seeds.size()], Rng) + "\n";
    FrameReader Whole(256), ByteWise(256);
    Whole.feed(Mutant);
    std::vector<std::pair<int, std::string>> A, B;
    for (;;) {
      FrameReader::Frame F = Whole.next();
      if (F.K == FrameReader::Kind::None)
        break;
      A.emplace_back(static_cast<int>(F.K), F.Line);
    }
    for (char C : Mutant) {
      ByteWise.feed(std::string_view(&C, 1));
      for (;;) {
        FrameReader::Frame F = ByteWise.next();
        if (F.K == FrameReader::Kind::None)
          break;
        B.emplace_back(static_cast<int>(F.K), F.Line);
      }
    }
    EXPECT_EQ(A, B) << "chunking changed framing for: " << Mutant;
  }
}

TEST(FrameFuzz, CommittedPinsStayStructuredErrors) {
  // Reduced malformed frames live under tests/regress/frames; every
  // one must parse-fail into a structured error, never a crash.
  Config Cfg;
  Admission Gate(8, 30000);
  CheckMemoryStore Store;
  Workspace Ws(Cfg, Gate, Store);

  std::vector<fs::path> Pins;
  for (const auto &E : fs::directory_iterator(fs::path(VAULT_REGRESS_DIR) /
                                              "frames"))
    if (E.path().extension() == ".frame")
      Pins.push_back(E.path());
  std::sort(Pins.begin(), Pins.end());
  ASSERT_GE(Pins.size(), 6u) << "frame pin corpus went missing";

  for (const fs::path &P : Pins) {
    std::ifstream In(P, std::ios::binary);
    std::stringstream Buf;
    Buf << In.rdbuf();
    std::string Line = Buf.str();
    // Stored with a trailing newline like any text file; the frame is
    // the line itself.
    while (!Line.empty() && (Line.back() == '\n' || Line.back() == '\r'))
      Line.pop_back();
    std::string Resp = Ws.handleLine(Line);
    std::string Err;
    std::optional<json::Value> V = json::parseJson(Resp, &Err);
    ASSERT_TRUE(V.has_value()) << P << ": " << Resp;
    EXPECT_TRUE(V->find("error")) << P << ": expected an error, got " << Resp;
  }
}

} // namespace
