//===- ServerGoldenTest.cpp - warm vaultd vs cold vaultc byte-identity ----===//
//
// The server's contract with its clients: a check answered by the warm
// daemon embeds exactly the bytes a cold one-shot `vaultc
// --diagnostics-format=json` run would have printed — for every corpus
// program, at any job count, and after an open→change→check edit cycle
// in which only the dirtied function is re-checked (asserted through
// both the response counters and the embedded --stats-json document).
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include "corpus/Corpus.h"
#include "support/DiagnosticsFormat.h"
#include "support/Json.h"

#include <gtest/gtest.h>

using namespace vault;
using namespace vault::server;

namespace {

/// What a cold one-shot vaultc run prints for this buffer set.
struct OneShot {
  bool Ok = false;
  std::string DiagJson;
  VaultCompiler::Stats St;
};

OneShot oneShot(const std::vector<std::pair<std::string, std::string>> &Bufs,
                unsigned Jobs = 1) {
  VaultCompiler C;
  C.setJobs(Jobs);
  for (const auto &[Name, Text] : Bufs)
    C.queueSource(Name, Text);
  OneShot O;
  O.Ok = C.check();
  O.DiagJson = renderDiagnosticsJson(C.diags());
  O.St = C.stats();
  return O;
}

json::Value send(Workspace &Ws, const std::string &Line) {
  std::string R = Ws.handleLine(Line);
  std::string Err;
  std::optional<json::Value> V = json::parseJson(R, &Err);
  EXPECT_TRUE(V.has_value()) << R << "\n" << Err;
  return V ? *V : json::Value{};
}

std::string openRequest(const std::string &Name, const std::string &Text,
                        bool Change = false) {
  return std::string("{\"id\": 1, \"method\": \"") +
         (Change ? "change" : "open") + "\", \"params\": {\"name\": " +
         json::str(Name) + ", \"text\": " + json::str(Text) + "}}";
}

const json::Value *checkResult(Workspace &Ws, unsigned Jobs,
                               json::Value &Resp) {
  Resp = send(Ws, "{\"id\": 2, \"method\": \"check\", \"params\": {\"jobs\": " +
                      std::to_string(Jobs) + "}}");
  return Resp.find("result");
}

/// The check.flow_checks_run counter from an embedded --stats-json
/// document, or ~0 when absent.
double statsFlowChecks(const std::string &StatsJson) {
  std::string Err;
  std::optional<json::Value> V = json::parseJson(StatsJson, &Err);
  EXPECT_TRUE(V.has_value()) << Err;
  if (!V)
    return -1;
  const json::Value *Counters = V->find("counters");
  if (!Counters)
    return -1;
  const json::Value *N = Counters->find("check.flow_checks_run");
  return N ? N->Num : -1;
}

class ServerGolden : public ::testing::TestWithParam<corpus::ProgramInfo> {};

TEST_P(ServerGolden, WarmCheckMatchesColdOneShotByteForByte) {
  const auto &P = GetParam();
  std::string Text = corpus::load(P.Name);
  ASSERT_FALSE(Text.empty());
  std::vector<std::pair<std::string, std::string>> Bufs = {
      {P.Name + ".vlt", Text}};
  OneShot Cold = oneShot(Bufs);
  EXPECT_EQ(Cold.Ok, P.ExpectAccept) << P.PaperRef;

  Config Cfg;
  Admission Gate(8, 30000);
  CheckMemoryStore Store;
  Workspace Ws(Cfg, Gate, Store);
  send(Ws, openRequest(P.Name + ".vlt", Text));

  // First (cold-store) check, then a warm replay at a different job
  // count: both must embed the one-shot renderer's bytes.
  for (unsigned Jobs : {1u, 4u}) {
    json::Value Resp;
    const json::Value *Res = checkResult(Ws, Jobs, Resp);
    ASSERT_TRUE(Res) << P.Name;
    EXPECT_EQ(Res->find("ok")->B, Cold.Ok) << P.Name;
    EXPECT_EQ(Res->find("diagnostics")->Str, Cold.DiagJson)
        << P.Name << " at jobs=" << Jobs;
  }

  // The second check ran against the warm store: zero flow checks.
  json::Value Resp;
  const json::Value *Res = checkResult(Ws, 1, Resp);
  ASSERT_TRUE(Res);
  EXPECT_EQ(Res->find("flowChecksRun")->Num, 0) << P.Name;
  EXPECT_EQ(statsFlowChecks(Res->find("stats")->Str), 0) << P.Name;
  EXPECT_EQ(Res->find("diagnostics")->Str, Cold.DiagJson) << P.Name;
}

TEST(ServerGoldenEdit, EditCycleRechecksOnlyTheDirtiedFunction) {
  // The acceptance scenario end to end, in process: a multi-buffer
  // workspace, one function edited, and the warm re-check must (a) run
  // zero flow checks for the untouched functions and (b) answer with
  // bytes identical to a cold one-shot run of the edited snapshot.
  const std::string Lib = "key L;\n"
                          "void acquire() [ +L ];\n"
                          "void release() [ -L ];\n"
                          "void helper_one() { acquire(); release(); }\n"
                          "void helper_two() { int x = 1; }\n";
  const std::string MainV1 = "void helper_one();\n"
                             "void main() { helper_one(); }\n";
  const std::string MainV2 = "void helper_one();\n"
                             "void main() { helper_one(); helper_one(); }\n";

  Config Cfg;
  Admission Gate(8, 30000);
  CheckMemoryStore Store;
  Workspace Ws(Cfg, Gate, Store);
  send(Ws, openRequest("lib.vlt", Lib));
  send(Ws, openRequest("main.vlt", MainV1));

  json::Value Resp;
  const json::Value *Res = checkResult(Ws, 1, Resp);
  ASSERT_TRUE(Res);
  EXPECT_TRUE(Res->find("ok")->B) << Res->find("diagnostics")->Str;
  // acquire/release are prototypes; the three bodies all check cold.
  EXPECT_EQ(Res->find("flowChecksRun")->Num, 3);

  // Edit main() only.
  send(Ws, openRequest("main.vlt", MainV2, /*Change=*/true));
  Res = checkResult(Ws, 1, Resp);
  ASSERT_TRUE(Res);
  EXPECT_TRUE(Res->find("ok")->B);
  EXPECT_EQ(Res->find("flowChecksRun")->Num, 1) << "only main() was dirtied";
  EXPECT_EQ(Res->find("cacheHits")->Num, 2) << "the library stayed cached";
  EXPECT_EQ(Res->find("cacheInvalidated")->Num, 1);
  EXPECT_EQ(statsFlowChecks(Res->find("stats")->Str), 1);

  // Byte-identity against a cold one-shot of the edited snapshot, at
  // both job counts.
  OneShot Cold = oneShot({{"lib.vlt", Lib}, {"main.vlt", MainV2}});
  EXPECT_EQ(Res->find("diagnostics")->Str, Cold.DiagJson);
  OneShot Cold4 = oneShot({{"lib.vlt", Lib}, {"main.vlt", MainV2}}, 4);
  EXPECT_EQ(Cold4.DiagJson, Cold.DiagJson);
  Res = checkResult(Ws, 4, Resp);
  ASSERT_TRUE(Res);
  EXPECT_EQ(Res->find("diagnostics")->Str, Cold.DiagJson);
  EXPECT_EQ(Res->find("flowChecksRun")->Num, 0); // Fully warm now.
}

TEST(ServerGoldenEdit, EditThatIntroducesAnErrorReportsItIdentically) {
  // The edited function's fresh diagnostics and the cached functions'
  // replayed ones interleave into the same document a cold run prints.
  const std::string Lib = "key L;\n"
                          "void acquire() [ +L ];\n"
                          "void release() [ -L ];\n"
                          "void helper_one() { acquire(); release(); }\n";
  const std::string MainOk = "void main() { int x = 1; }\n";
  const std::string MainBad = "void acquire() [ +L ];\n"
                              "void main() { acquire(); }\n"; // Leaks L.

  Config Cfg;
  Admission Gate(8, 30000);
  CheckMemoryStore Store;
  Workspace Ws(Cfg, Gate, Store);
  send(Ws, openRequest("lib.vlt", Lib));
  send(Ws, openRequest("main.vlt", MainOk));
  json::Value Resp;
  const json::Value *Res = checkResult(Ws, 1, Resp);
  ASSERT_TRUE(Res);
  EXPECT_TRUE(Res->find("ok")->B) << Res->find("diagnostics")->Str;

  send(Ws, openRequest("main.vlt", MainBad, /*Change=*/true));
  Res = checkResult(Ws, 1, Resp);
  ASSERT_TRUE(Res);
  EXPECT_FALSE(Res->find("ok")->B);
  OneShot Cold = oneShot({{"lib.vlt", Lib}, {"main.vlt", MainBad}});
  EXPECT_FALSE(Cold.Ok);
  EXPECT_EQ(Res->find("diagnostics")->Str, Cold.DiagJson);
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, ServerGolden, ::testing::ValuesIn(corpus::index()),
    [](const ::testing::TestParamInfo<corpus::ProgramInfo> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

} // namespace
