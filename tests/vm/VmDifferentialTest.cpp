//===- VmDifferentialTest.cpp - VM vs tree-walker over the corpus ---------===//
//
// The engine-equivalence contract: for every runnable corpus program,
// the register-bytecode VM and the tree-walking interpreter observe
// byte-identical behavior — output lines, individual violation
// messages, total detection counts, leak sets, completion, and trap
// message. The tree-walker is the reference semantics; any divergence
// is a VM bug (or, historically, an undocumented walker quirk the VM
// must replicate).
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "interp/Interp.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace vault;

namespace {

/// Every observable of one engine run, in comparable form.
struct Observed {
  bool Ran = false;
  bool Trapped = false;
  std::string TrapMessage;
  std::vector<std::string> Output;
  std::vector<std::string> Violations;
  unsigned TotalViolations = 0;
  size_t LeakedRegions = 0, LeakedSockets = 0, LeakedDcs = 0,
         LeakedMutexes = 0;
};

Observed observe(interp::Machine &M) {
  Observed O;
  O.Ran = M.run("main");
  O.Trapped = M.trapped();
  O.TrapMessage = M.trapMessage();
  O.Output = M.output();
  O.Violations = M.violations();
  O.TotalViolations = M.totalViolations();
  O.LeakedRegions = M.regions().leakedRegions().size();
  O.LeakedSockets = M.sockets().leakedSockets().size();
  O.LeakedDcs = M.gdi().leakedDcs().size();
  O.LeakedMutexes = M.locks().leakedMutexes().size();
  return O;
}

class VmDifferential : public ::testing::TestWithParam<corpus::ProgramInfo> {};

TEST_P(VmDifferential, EnginesObserveIdenticalBehavior) {
  const auto &P = GetParam();
  if (!P.Runnable)
    GTEST_SKIP() << "not runnable";
  auto C = corpus::check(P.Name);

  interp::Interp Walker(*C);
  Observed W = observe(Walker);
  vm::Vm Vm(*C);
  Observed V = observe(Vm);

  EXPECT_EQ(W.Ran, V.Ran);
  EXPECT_EQ(W.Trapped, V.Trapped);
  EXPECT_EQ(W.TrapMessage, V.TrapMessage);
  EXPECT_EQ(W.Output, V.Output) << "stdout lines diverge";
  EXPECT_EQ(W.Violations, V.Violations) << "violation messages diverge";
  EXPECT_EQ(W.TotalViolations, V.TotalViolations);
  EXPECT_EQ(W.LeakedRegions, V.LeakedRegions);
  EXPECT_EQ(W.LeakedSockets, V.LeakedSockets);
  EXPECT_EQ(W.LeakedDcs, V.LeakedDcs);
  EXPECT_EQ(W.LeakedMutexes, V.LeakedMutexes);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, VmDifferential, ::testing::ValuesIn(corpus::index()),
    [](const ::testing::TestParamInfo<corpus::ProgramInfo> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

} // namespace
