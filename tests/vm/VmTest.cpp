//===- VmTest.cpp - Targeted bytecode-VM semantics ------------------------===//
//
// Unit coverage for the VM features the corpus exercises only
// incidentally: closures over mutable locals, switch re-execution,
// recursion, the shared step budget (which must exhaust at the
// identical program point in both engines), and the disassembler's
// stable text form. The corpus-wide equivalence lives in
// VmDifferentialTest.cpp; these tests pin the mechanisms.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "interp/Interp.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace vault;
using namespace vault::test;

namespace {

/// Checks then runs `main` under the VM.
std::pair<std::unique_ptr<VaultCompiler>, std::unique_ptr<vm::Vm>>
runVm(const std::string &Src) {
  auto C = check(Src);
  auto V = std::make_unique<vm::Vm>(*C);
  V->run("main");
  return {std::move(C), std::move(V)};
}

TEST(Vm, ArithmeticControlFlowAndCalls) {
  auto [C, V] = runVm(R"(
void print_int(int n);
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
void main() {
  int i = 0;
  while (i < 10) {
    print_int(fib(i));
    i = i + 1;
  }
}
)");
  ASSERT_FALSE(V->trapped()) << V->trapMessage();
  ASSERT_EQ(V->output().size(), 10u);
  EXPECT_EQ(V->output()[0], "0");
  EXPECT_EQ(V->output()[9], "34");
}

TEST(Vm, ClosureCapturesMutableLocal) {
  auto [C, V] = runVm(R"(
void print_int(int n);
void main() {
  int count = 0;
  void bump() { count = count + 1; }
  bump();
  bump();
  bump();
  print_int(count);
}
)");
  ASSERT_FALSE(V->trapped()) << V->trapMessage();
  EXPECT_EQ(V->output()[0], "3");
}

TEST(Vm, SwitchBindersRebindOnReexecution) {
  // The binder slots must be re-created on every arm entry — a loop
  // that switches on payloads of different arity would otherwise leak
  // a stale binding from the previous iteration.
  auto [C, V] = runVm(R"(
void print_int(int n);
variant shape [ 'Circle(int) | 'Rect(int, int) ];
int area(shape s) {
  switch (s) {
    case 'Circle(r):
      return 3 * r * r;
    case 'Rect(w, h):
      return w * h;
  }
}
void main() {
  int i = 0;
  while (i < 2) {
    print_int(area('Rect(3, 4)));
    print_int(area('Circle(2)));
    i = i + 1;
  }
}
)");
  ASSERT_FALSE(V->trapped()) << V->trapMessage();
  ASSERT_EQ(V->output().size(), 4u);
  EXPECT_EQ(V->output()[0], "12");
  EXPECT_EQ(V->output()[1], "12");
  EXPECT_EQ(V->output()[2], "12");
  EXPECT_EQ(V->output()[3], "12");
}

TEST(Vm, StepBudgetTrapsAtTheSamePointAsWalker) {
  // The budget is charged at the same abstract points (loop iteration,
  // call entry) in both engines: identical trap message *and*
  // identical output prefix when the budget runs out mid-program.
  const char *Src = R"(
void print_int(int n);
void main() {
  int i = 0;
  while (i < 1000000) {
    print_int(i);
    i = i + 1;
  }
}
)";
  auto CW = check(Src);
  interp::Interp W(*CW);
  W.MaxSteps = 500;
  EXPECT_FALSE(W.run("main"));

  auto CV = check(Src);
  vm::Vm V(*CV);
  V.MaxSteps = 500;
  EXPECT_FALSE(V.run("main"));

  EXPECT_TRUE(W.trapped());
  EXPECT_TRUE(V.trapped());
  EXPECT_EQ(W.trapMessage(), V.trapMessage());
  EXPECT_NE(W.trapMessage().find("interp-step-limit"), std::string::npos);
  EXPECT_EQ(W.output(), V.output())
      << "engines charged the budget at different points";
}

TEST(Vm, TrackedLifecycleViolationsMatchWalker) {
  const std::string Src = R"(
void main() {
  tracked(K) point p = new tracked point {x=1; y=2;};
  free(p);
  int n = p.x;
  print("after");
}
)";
  auto CW = check(Src, regionPrelude());
  interp::Interp W(*CW);
  W.run("main");
  auto CV = check(Src, regionPrelude());
  vm::Vm V(*CV);
  V.run("main");
  EXPECT_EQ(W.violations(), V.violations());
  EXPECT_EQ(W.output(), V.output());
  EXPECT_GT(V.violations().size(), 0u) << "use-after-free not observed";
}

TEST(Vm, DisassemblerRendersStableOpcodes) {
  auto C = check(R"(
void print_int(int n);
int twice(int x) { return x + x; }
void main() { print_int(twice(21)); }
)");
  const FuncDecl *Main = nullptr;
  for (const Decl *D : C->ast().program().Decls)
    if (const auto *F = dyn_cast<FuncDecl>(D); F && F->name() == "main")
      Main = F;
  ASSERT_NE(Main, nullptr);
  std::unique_ptr<vm::Chunk> Ch = vm::compileFunction(*C, Main);
  std::string Text = vm::disassemble(*Ch);
  EXPECT_NE(Text.find("func main/0"), std::string::npos) << Text;
  EXPECT_NE(Text.find("load.int"), std::string::npos) << Text;
  EXPECT_NE(Text.find("call"), std::string::npos) << Text;
}

TEST(Vm, ChunksAreCachedPerFunction) {
  auto C = check(R"(
int id(int x) { return x; }
void main() { id(1); id(2); }
)");
  vm::Vm V(*C);
  ASSERT_TRUE(V.run("main")) << V.trapMessage();
  const FuncDecl *Id = nullptr;
  for (const Decl *D : C->ast().program().Decls)
    if (const auto *F = dyn_cast<FuncDecl>(D); F && F->name() == "id")
      Id = F;
  ASSERT_NE(Id, nullptr);
  EXPECT_EQ(V.chunkFor(Id), V.chunkFor(Id)) << "chunk recompiled per call";
}

TEST(Vm, MissingMainTraps) {
  auto C = check("void notmain() {}");
  vm::Vm V(*C);
  EXPECT_FALSE(V.run("main"));
  EXPECT_TRUE(V.trapped());
}

} // namespace
