//===- BuggyDriverTest.cpp - Misbehaving drivers and the oracle -----------===//

#include "driver/FloppyDriver.h"
#include "driver/PassThroughDriver.h"

#include <gtest/gtest.h>

using namespace vault::kern;
using namespace vault::drv;

namespace {

struct BuggyRig {
  Kernel K;
  DeviceObject *Top = nullptr;

  explicit BuggyRig(DriverBug Bug, unsigned TriggerEvery = 0) {
    DeviceObject *Floppy = nullptr;
    DeviceObject *Stack = buildFloppyStack(K, &Floppy);
    DeviceObject *Bad = K.createDevice("buggy");
    makeBuggyDriver(K, Bad, Bug, TriggerEvery);
    K.attach(Bad, Stack);
    Top = Bad;
    auto *Ext = Floppy->extension<FloppyExtension>();
    Ext->Started = true;
    Ext->Hw.motorOn();
  }

  NtStatus read(unsigned Sector) {
    Irp *I = K.allocateIrp(IrpMajor::Read, Top, 512);
    I->currentLocation(nullptr).Offset = 512ull * Sector;
    I->currentLocation(nullptr).Length = 512;
    return K.sendRequest(Top, I);
  }
};

TEST(BuggyDriver, ForgetIrpLeaks) {
  BuggyRig R(DriverBug::ForgetIrp);
  R.read(0);
  EXPECT_GE(R.K.oracle().count(Violation::IrpLeak), 1u);
}

TEST(BuggyDriver, DoubleCompleteDetected) {
  BuggyRig R(DriverBug::DoubleComplete);
  R.read(0);
  EXPECT_EQ(R.K.oracle().count(Violation::IrpDoubleComplete), 1u);
}

TEST(BuggyDriver, CompleteAndForwardDetected) {
  BuggyRig R(DriverBug::CompleteAndForward);
  R.read(0);
  // Forwarding a completed IRP re-completes it below: double complete.
  EXPECT_GE(R.K.oracle().total(), 1u);
}

TEST(BuggyDriver, HoldLockLeavesIrqlRaised) {
  BuggyRig R(DriverBug::HoldLock);
  R.read(0);
  EXPECT_EQ(R.K.irql().current(), Irql::Dispatch)
      << "never released: the CPU is stuck at DISPATCH_LEVEL";
}

TEST(BuggyDriver, DoubleAcquireDeadlocks) {
  BuggyRig R(DriverBug::DoubleAcquire);
  R.read(0);
  EXPECT_EQ(R.K.oracle().count(Violation::LockDoubleAcquire), 1u);
}

TEST(BuggyDriver, PagedTouchAtDpcIsTimingDependent) {
  // Without memory pressure the bug is invisible...
  {
    BuggyRig R(DriverBug::TouchPagedAtDpc);
    R.read(0);
    EXPECT_EQ(R.K.oracle().count(Violation::PagedAccessAtDispatch), 0u);
  }
  // ...with pressure it bugchecks. Same driver, same request.
  {
    BuggyRig R(DriverBug::TouchPagedAtDpc);
    R.K.pool().evictAll();
    R.read(0);
    EXPECT_EQ(R.K.oracle().count(Violation::PagedAccessAtDispatch), 1u);
    EXPECT_TRUE(R.K.pool().bugchecked());
  }
}

TEST(BuggyDriver, UseIrpAfterCompleteDetected) {
  BuggyRig R(DriverBug::UseIrpAfterComplete);
  R.read(0);
  EXPECT_GE(R.K.oracle().count(Violation::IrpAccessWithoutOwnership), 1u);
}

TEST(BuggyDriver, IntermittentBugMissedByLightTesting) {
  // The bug fires every 1000th request; a 10-request test suite sees
  // nothing, a 2000-request soak finds it. This is the dynamic-testing
  // gap the paper's introduction describes.
  {
    BuggyRig R(DriverBug::ForgetIrp, 1000);
    for (unsigned I = 0; I != 10; ++I)
      R.read(I % 64);
    EXPECT_EQ(R.K.oracle().count(Violation::IrpLeak), 0u)
        << "light testing passes";
  }
  {
    BuggyRig R(DriverBug::ForgetIrp, 1000);
    for (unsigned I = 0; I != 2000; ++I)
      R.read(I % 64);
    EXPECT_GE(R.K.oracle().count(Violation::IrpLeak), 1u)
        << "soak testing eventually catches it";
  }
}

TEST(BuggyDriver, CleanFilterStaysClean) {
  BuggyRig R(DriverBug::None);
  for (unsigned I = 0; I != 32; ++I)
    EXPECT_EQ(R.read(I), NtStatus::Success);
  EXPECT_EQ(R.K.oracle().total(), 0u);
}

} // namespace
