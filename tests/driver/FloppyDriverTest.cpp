//===- FloppyDriverTest.cpp - The case-study driver under the simulator ---===//

#include "driver/FloppyDriver.h"
#include "driver/PassThroughDriver.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace vault::kern;
using namespace vault::drv;

namespace {

class FloppyStack : public ::testing::Test {
protected:
  void SetUp() override {
    Top = buildFloppyStack(K, &Floppy);
    Ext = Floppy->extension<FloppyExtension>();
  }

  NtStatus pnp(PnpMinor Minor) {
    Irp *I = K.allocateIrp(IrpMajor::Pnp, Top);
    I->currentLocation(nullptr).Minor = Minor;
    return K.sendRequest(Top, I);
  }

  Irp *io(IrpMajor Major, uint64_t Offset, uint32_t Length) {
    Irp *I = K.allocateIrp(Major, Top, Length);
    I->currentLocation(nullptr).Offset = Offset;
    I->currentLocation(nullptr).Length = Length;
    return I;
  }

  Kernel K;
  DeviceObject *Top = nullptr;
  DeviceObject *Floppy = nullptr;
  FloppyExtension *Ext = nullptr;
};

TEST_F(FloppyStack, StackShape) {
  EXPECT_EQ(K.stackDepth(Top), 4u);
  EXPECT_EQ(Top->name(), "filesystem");
  EXPECT_EQ(Floppy->name(), "floppy");
}

TEST_F(FloppyStack, StartDeviceViaFig7Idiom) {
  EXPECT_FALSE(Ext->Started);
  EXPECT_EQ(pnp(PnpMinor::StartDevice), NtStatus::Success);
  EXPECT_TRUE(Ext->Started);
  EXPECT_TRUE(Ext->Hw.isMotorOn());
  EXPECT_GE(K.stats().CompletionRoutinesRun, 1u)
      << "the regain-ownership completion routine must have run";
  EXPECT_EQ(K.oracle().total(), 0u);
}

TEST_F(FloppyStack, ReadBeforeStartFails) {
  Irp *I = io(IrpMajor::Read, 0, 512);
  EXPECT_EQ(K.sendRequest(Top, I), NtStatus::DeviceNotReady);
}

TEST_F(FloppyStack, WriteThenReadRoundTrip) {
  pnp(PnpMinor::StartDevice);
  const char Msg[] = "hello, floppy";
  Irp *W = io(IrpMajor::Write, 512 * 5, 512);
  std::memcpy(W->buffer(nullptr).data(), Msg, sizeof(Msg));
  EXPECT_EQ(K.sendRequest(Top, W), NtStatus::Success);
  EXPECT_EQ(W->Information, 512u);
  EXPECT_TRUE(W->PendingReturned) << "read/write are asynchronous";

  Irp *R = io(IrpMajor::Read, 512 * 5, 512);
  EXPECT_EQ(K.sendRequest(Top, R), NtStatus::Success);
  EXPECT_EQ(std::memcmp(R->buffer(nullptr).data(), Msg, sizeof(Msg)), 0);
  EXPECT_EQ(K.oracle().total(), 0u);
}

TEST_F(FloppyStack, UnalignedTransferRejected) {
  pnp(PnpMinor::StartDevice);
  Irp *I = io(IrpMajor::Read, 100, 512);
  EXPECT_EQ(K.sendRequest(Top, I), NtStatus::InvalidParameter);
}

TEST_F(FloppyStack, ReadPastEndOfMedia) {
  pnp(PnpMinor::StartDevice);
  Irp *I = io(IrpMajor::Read, FloppyHardware::DiskSize, 512);
  EXPECT_EQ(K.sendRequest(Top, I), NtStatus::EndOfFile);
}

TEST_F(FloppyStack, ZeroLengthCompletesImmediately) {
  pnp(PnpMinor::StartDevice);
  Irp *I = io(IrpMajor::Read, 0, 0);
  EXPECT_EQ(K.sendRequest(Top, I), NtStatus::Success);
  EXPECT_EQ(I->Information, 0u);
}

TEST_F(FloppyStack, GetGeometryIoctl) {
  pnp(PnpMinor::StartDevice);
  Irp *I = K.allocateIrp(IrpMajor::DeviceControl, Top,
                         sizeof(FloppyGeometry));
  I->currentLocation(nullptr).ControlCode =
      static_cast<uint32_t>(FloppyIoctl::GetGeometry);
  EXPECT_EQ(K.sendRequest(Top, I), NtStatus::Success);
  FloppyGeometry G{};
  std::memcpy(&G, I->buffer(nullptr).data(), sizeof(G));
  EXPECT_EQ(G.Cylinders, FloppyHardware::Cylinders);
  EXPECT_EQ(G.Heads, FloppyHardware::Heads);
  EXPECT_EQ(G.SectorsPerTrack, FloppyHardware::SectorsPerTrack);
  EXPECT_EQ(G.SectorSize, FloppyHardware::SectorSize);
}

TEST_F(FloppyStack, FormatAndCheckVerify) {
  pnp(PnpMinor::StartDevice);
  Irp *W = io(IrpMajor::Write, 0, 512);
  W->buffer(nullptr)[0] = 0xAA;
  K.sendRequest(Top, W);

  Irp *F = K.allocateIrp(IrpMajor::DeviceControl, Top);
  F->currentLocation(nullptr).ControlCode =
      static_cast<uint32_t>(FloppyIoctl::FormatMedia);
  EXPECT_EQ(K.sendRequest(Top, F), NtStatus::Success);

  Irp *R = io(IrpMajor::Read, 0, 512);
  K.sendRequest(Top, R);
  EXPECT_EQ(R->buffer(nullptr)[0], 0u) << "format zeroed the media";
}

TEST_F(FloppyStack, WriteProtectedMediaRejectsFormat) {
  pnp(PnpMinor::StartDevice);
  Ext->Hw.setWriteProtected(true);
  Irp *F = K.allocateIrp(IrpMajor::DeviceControl, Top);
  F->currentLocation(nullptr).ControlCode =
      static_cast<uint32_t>(FloppyIoctl::FormatMedia);
  EXPECT_EQ(K.sendRequest(Top, F), NtStatus::Unsuccessful);
}

TEST_F(FloppyStack, EjectedMediaFailsIo) {
  pnp(PnpMinor::StartDevice);
  Irp *E = K.allocateIrp(IrpMajor::DeviceControl, Top);
  E->currentLocation(nullptr).ControlCode =
      static_cast<uint32_t>(FloppyIoctl::EjectMedia);
  EXPECT_EQ(K.sendRequest(Top, E), NtStatus::Success);
  Irp *R = io(IrpMajor::Read, 0, 512);
  EXPECT_EQ(K.sendRequest(Top, R), NtStatus::DeviceNotReady);
}

TEST_F(FloppyStack, CreateCloseTracksOpenCount) {
  pnp(PnpMinor::StartDevice);
  Irp *C1 = K.allocateIrp(IrpMajor::Create, Top);
  K.sendRequest(Top, C1);
  EXPECT_EQ(Ext->OpenCount, 1u);
  // QueryRemove refused while open.
  EXPECT_EQ(pnp(PnpMinor::QueryRemove), NtStatus::Unsuccessful);
  Irp *C2 = K.allocateIrp(IrpMajor::Close, Top);
  K.sendRequest(Top, C2);
  EXPECT_EQ(Ext->OpenCount, 0u);
  EXPECT_EQ(pnp(PnpMinor::QueryRemove), NtStatus::Success);
}

TEST_F(FloppyStack, RemoveDeviceDrainsAndStops) {
  pnp(PnpMinor::StartDevice);
  EXPECT_EQ(pnp(PnpMinor::RemoveDevice), NtStatus::Success);
  EXPECT_TRUE(Ext->Removed);
  EXPECT_FALSE(Ext->Hw.isMotorOn());
  Irp *R = io(IrpMajor::Read, 0, 512);
  EXPECT_EQ(K.sendRequest(Top, R), NtStatus::DeviceNotReady);
  EXPECT_EQ(K.reportIrpLeaks(), 0u);
  EXPECT_EQ(K.oracle().total(), 0u);
}

TEST_F(FloppyStack, SustainedWorkloadStaysClean) {
  pnp(PnpMinor::StartDevice);
  for (unsigned S = 0; S != 64; ++S) {
    Irp *W = io(IrpMajor::Write, 512ull * S, 512);
    W->buffer(nullptr)[0] = static_cast<uint8_t>(S);
    ASSERT_EQ(K.sendRequest(Top, W), NtStatus::Success);
  }
  for (unsigned S = 0; S != 64; ++S) {
    Irp *R = io(IrpMajor::Read, 512ull * S, 512);
    ASSERT_EQ(K.sendRequest(Top, R), NtStatus::Success);
    ASSERT_EQ(R->buffer(nullptr)[0], static_cast<uint8_t>(S));
  }
  EXPECT_EQ(Ext->ReadsServed, 64u);
  EXPECT_EQ(Ext->WritesServed, 64u);
  EXPECT_EQ(K.reportIrpLeaks(), 0u);
  EXPECT_EQ(K.oracle().total(), 0u);
}

TEST(FloppyHardwareModel, GeometryMath) {
  EXPECT_EQ(FloppyHardware::TotalSectors, 2880u);
  EXPECT_EQ(FloppyHardware::DiskSize, 1474560u);
}

TEST(FloppyHardwareModel, MotorGatesTransfers) {
  FloppyHardware Hw;
  uint8_t Sector[FloppyHardware::SectorSize] = {};
  EXPECT_FALSE(Hw.readSector(0, Sector)) << "motor off";
  Hw.motorOn();
  EXPECT_TRUE(Hw.readSector(0, Sector));
}

TEST(FloppyHardwareModel, SeekCostsTime) {
  FloppyHardware Hw;
  Hw.motorOn();
  uint8_t Sector[FloppyHardware::SectorSize] = {};
  uint64_t T0 = Hw.elapsedUs();
  Hw.readSector(0, Sector);
  uint64_t T1 = Hw.elapsedUs();
  Hw.readSector(FloppyHardware::TotalSectors - 1, Sector); // Far seek.
  uint64_t T2 = Hw.elapsedUs();
  EXPECT_GT(T2 - T1, T1 - T0);
  EXPECT_EQ(Hw.currentCylinder(), FloppyHardware::Cylinders - 1);
}

} // namespace
