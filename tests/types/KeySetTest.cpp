//===- KeySetTest.cpp -----------------------------------------------------===//

#include "types/KeySet.h"

#include <gtest/gtest.h>

using namespace vault;

namespace {

TEST(KeyTable, CreateAndQuery) {
  KeyTable T;
  KeySym A = T.create("R", KeyTable::Origin::Local, SourceLoc{});
  KeySym B = T.create("IRQL", KeyTable::Origin::Global, SourceLoc{});
  EXPECT_NE(A, InvalidKey);
  EXPECT_NE(A, B);
  EXPECT_EQ(T.name(A), "R");
  EXPECT_FALSE(T.isGlobal(A));
  EXPECT_TRUE(T.isGlobal(B));
  EXPECT_EQ(T.size(), 2u);
}

TEST(HeldKeySet, NoDuplicates) {
  KeyTable T;
  KeySym K = T.create("K", KeyTable::Origin::Local, SourceLoc{});
  HeldKeySet S;
  EXPECT_TRUE(S.add(K, StateRef::top()));
  EXPECT_FALSE(S.add(K, StateRef::top())) << "keys cannot be duplicated";
  EXPECT_EQ(S.size(), 1u);
}

TEST(HeldKeySet, NoLosing) {
  KeyTable T;
  KeySym K = T.create("K", KeyTable::Origin::Local, SourceLoc{});
  HeldKeySet S;
  EXPECT_FALSE(S.remove(K)) << "removing an unheld key fails";
  S.add(K, StateRef::top());
  EXPECT_TRUE(S.remove(K));
  EXPECT_FALSE(S.remove(K));
}

TEST(HeldKeySet, Transition) {
  KeyTable T;
  KeySym K = T.create("S", KeyTable::Origin::Local, SourceLoc{});
  HeldKeySet S;
  S.add(K, StateRef::name("raw"));
  EXPECT_TRUE(S.transition(K, StateRef::name("named")));
  EXPECT_EQ(S.stateOf(K), StateRef::name("named"));
  S.remove(K);
  EXPECT_FALSE(S.transition(K, StateRef::name("x")));
}

TEST(HeldKeySet, Equality) {
  KeyTable T;
  KeySym A = T.create("A", KeyTable::Origin::Local, SourceLoc{});
  KeySym B = T.create("B", KeyTable::Origin::Local, SourceLoc{});
  HeldKeySet S1, S2;
  S1.add(A, StateRef::name("x"));
  S1.add(B, StateRef::top());
  S2.add(B, StateRef::top());
  S2.add(A, StateRef::name("x"));
  EXPECT_TRUE(S1 == S2);
  S2.transition(A, StateRef::name("y"));
  EXPECT_FALSE(S1 == S2);
}

TEST(HeldKeySet, RenameKeys) {
  KeyTable T;
  KeySym A = T.create("A", KeyTable::Origin::Local, SourceLoc{});
  KeySym B = T.create("B", KeyTable::Origin::Local, SourceLoc{});
  KeySym C = T.create("C", KeyTable::Origin::Local, SourceLoc{});
  HeldKeySet S;
  S.add(A, StateRef::name("s"));
  S.add(C, StateRef::top());
  EXPECT_TRUE(S.renameKeys({{A, B}}));
  EXPECT_FALSE(S.contains(A));
  EXPECT_TRUE(S.contains(B));
  EXPECT_EQ(S.stateOf(B), StateRef::name("s"));
  EXPECT_TRUE(S.contains(C));
}

TEST(HeldKeySet, SwapRenameIsSimultaneous) {
  // {k1->k2, k2->k1} must exchange the two keys' states, not chain one
  // through the other.
  KeyTable T;
  KeySym K1 = T.create("K1", KeyTable::Origin::Local, SourceLoc{});
  KeySym K2 = T.create("K2", KeyTable::Origin::Local, SourceLoc{});
  HeldKeySet S;
  S.add(K1, StateRef::name("one"));
  S.add(K2, StateRef::name("two"));
  EXPECT_TRUE(S.renameKeys({{K1, K2}, {K2, K1}}));
  EXPECT_EQ(S.stateOf(K1), StateRef::name("two"));
  EXPECT_EQ(S.stateOf(K2), StateRef::name("one"));
  EXPECT_EQ(S.size(), 2u);
}

TEST(HeldKeySet, ChainRenameDoesNotCascade) {
  // {k1->k2, k2->k3}: k1's state lands on k2 and k2's on k3 in one
  // step; k1's must NOT ride the second mapping through to k3.
  KeyTable T;
  KeySym K1 = T.create("K1", KeyTable::Origin::Local, SourceLoc{});
  KeySym K2 = T.create("K2", KeyTable::Origin::Local, SourceLoc{});
  KeySym K3 = T.create("K3", KeyTable::Origin::Local, SourceLoc{});
  HeldKeySet S;
  S.add(K1, StateRef::name("one"));
  S.add(K2, StateRef::name("two"));
  EXPECT_TRUE(S.renameKeys({{K1, K2}, {K2, K3}}));
  EXPECT_FALSE(S.contains(K1));
  EXPECT_EQ(S.stateOf(K2), StateRef::name("one"));
  EXPECT_EQ(S.stateOf(K3), StateRef::name("two"));
}

TEST(HeldKeySet, TwoSourcesOneTargetRejectedUnchanged) {
  // Regression pin: the old std::map representation kept the first
  // source and *silently dropped* the second — a held key vanished.
  // Colliding renames are now rejected outright, set untouched.
  KeyTable T;
  KeySym K1 = T.create("K1", KeyTable::Origin::Local, SourceLoc{});
  KeySym K2 = T.create("K2", KeyTable::Origin::Local, SourceLoc{});
  KeySym K3 = T.create("K3", KeyTable::Origin::Local, SourceLoc{});
  HeldKeySet S;
  S.add(K1, StateRef::name("one"));
  S.add(K2, StateRef::name("two"));
  HeldKeySet Before = S;
  EXPECT_FALSE(S.renameKeys({{K1, K3}, {K2, K3}}));
  EXPECT_TRUE(S == Before);
  EXPECT_EQ(S.size(), 2u);
}

TEST(HeldKeySet, RenameOntoLiveUnrenamedKeyRejected) {
  // {k1->k2} while k2 is itself held (and not renamed away) would
  // merge two live keys; same key-loss class as above.
  KeyTable T;
  KeySym K1 = T.create("K1", KeyTable::Origin::Local, SourceLoc{});
  KeySym K2 = T.create("K2", KeyTable::Origin::Local, SourceLoc{});
  HeldKeySet S;
  S.add(K1, StateRef::name("one"));
  S.add(K2, StateRef::name("two"));
  HeldKeySet Before = S;
  EXPECT_FALSE(S.renameKeys({{K1, K2}}));
  EXPECT_TRUE(S == Before);
}

TEST(HeldKeySet, EquivalenceWithMapReferenceImplementation) {
  // Drive the small-vector representation and a std::map reference
  // model through the same pseudo-random op sequence (adds, removes,
  // transitions, collision-free renames) and require identical
  // contents and iteration order at every step.
  KeyTable T;
  std::vector<KeySym> Keys;
  for (int I = 0; I != 24; ++I)
    Keys.push_back(T.create("K" + std::to_string(I),
                            KeyTable::Origin::Local, SourceLoc{}));

  HeldKeySet S;
  std::map<KeySym, StateRef> Ref;
  uint64_t Rng = 42;
  auto Next = [&] {
    Rng = Rng * 6364136223846793005u + 1442695040888963407u;
    return static_cast<uint32_t>(Rng >> 33);
  };
  auto CheckEqual = [&] {
    ASSERT_EQ(S.size(), Ref.size());
    auto RefIt = Ref.begin();
    for (const auto &[K, St] : S) {
      ASSERT_EQ(K, RefIt->first);
      ASSERT_TRUE(St == RefIt->second);
      ++RefIt;
    }
  };

  for (int Step = 0; Step != 2000; ++Step) {
    uint32_t Op = Next() % 100;
    KeySym K = Keys[Next() % Keys.size()];
    if (Op < 45) {
      StateRef St = StateRef::name("s" + std::to_string(Next() % 4));
      bool Added = S.add(K, St);
      EXPECT_EQ(Added, Ref.emplace(K, St).second);
    } else if (Op < 70) {
      bool Removed = S.remove(K);
      EXPECT_EQ(Removed, Ref.erase(K) != 0);
    } else if (Op < 90) {
      StateRef St = StateRef::name("t" + std::to_string(Next() % 4));
      bool Changed = S.transition(K, St);
      auto It = Ref.find(K);
      EXPECT_EQ(Changed, It != Ref.end());
      if (It != Ref.end())
        It->second = St;
    } else {
      // A collision-free rename: map one held key onto an unheld one.
      KeySym To = Keys[Next() % Keys.size()];
      if (!Ref.count(K) || Ref.count(To) || K == To)
        continue;
      EXPECT_TRUE(S.renameKeys({{K, To}}));
      auto Node = Ref.extract(K);
      Node.key() = To;
      Ref.insert(std::move(Node));
    }
    CheckEqual();
  }
}

TEST(HeldKeySet, DeterministicIteration) {
  KeyTable T;
  std::vector<KeySym> Keys;
  for (int I = 0; I != 16; ++I)
    Keys.push_back(T.create("K", KeyTable::Origin::Local, SourceLoc{}));
  HeldKeySet S;
  for (auto It = Keys.rbegin(); It != Keys.rend(); ++It)
    S.add(*It, StateRef::top());
  KeySym Prev = 0;
  for (const auto &[K, St] : S) {
    (void)St;
    EXPECT_GT(K, Prev);
    Prev = K;
  }
}

TEST(HeldKeySet, Render) {
  KeyTable T;
  KeySym K = T.create("R", KeyTable::Origin::Local, SourceLoc{});
  HeldKeySet S;
  S.add(K, StateRef::name("open"));
  std::string Str = S.str(T);
  EXPECT_NE(Str.find("R"), std::string::npos);
  EXPECT_NE(Str.find("open"), std::string::npos);
}

} // namespace
