//===- KeySetTest.cpp -----------------------------------------------------===//

#include "types/KeySet.h"

#include <gtest/gtest.h>

using namespace vault;

namespace {

TEST(KeyTable, CreateAndQuery) {
  KeyTable T;
  KeySym A = T.create("R", KeyTable::Origin::Local, SourceLoc{});
  KeySym B = T.create("IRQL", KeyTable::Origin::Global, SourceLoc{});
  EXPECT_NE(A, InvalidKey);
  EXPECT_NE(A, B);
  EXPECT_EQ(T.name(A), "R");
  EXPECT_FALSE(T.isGlobal(A));
  EXPECT_TRUE(T.isGlobal(B));
  EXPECT_EQ(T.size(), 2u);
}

TEST(HeldKeySet, NoDuplicates) {
  KeyTable T;
  KeySym K = T.create("K", KeyTable::Origin::Local, SourceLoc{});
  HeldKeySet S;
  EXPECT_TRUE(S.add(K, StateRef::top()));
  EXPECT_FALSE(S.add(K, StateRef::top())) << "keys cannot be duplicated";
  EXPECT_EQ(S.size(), 1u);
}

TEST(HeldKeySet, NoLosing) {
  KeyTable T;
  KeySym K = T.create("K", KeyTable::Origin::Local, SourceLoc{});
  HeldKeySet S;
  EXPECT_FALSE(S.remove(K)) << "removing an unheld key fails";
  S.add(K, StateRef::top());
  EXPECT_TRUE(S.remove(K));
  EXPECT_FALSE(S.remove(K));
}

TEST(HeldKeySet, Transition) {
  KeyTable T;
  KeySym K = T.create("S", KeyTable::Origin::Local, SourceLoc{});
  HeldKeySet S;
  S.add(K, StateRef::name("raw"));
  EXPECT_TRUE(S.transition(K, StateRef::name("named")));
  EXPECT_EQ(S.stateOf(K), StateRef::name("named"));
  S.remove(K);
  EXPECT_FALSE(S.transition(K, StateRef::name("x")));
}

TEST(HeldKeySet, Equality) {
  KeyTable T;
  KeySym A = T.create("A", KeyTable::Origin::Local, SourceLoc{});
  KeySym B = T.create("B", KeyTable::Origin::Local, SourceLoc{});
  HeldKeySet S1, S2;
  S1.add(A, StateRef::name("x"));
  S1.add(B, StateRef::top());
  S2.add(B, StateRef::top());
  S2.add(A, StateRef::name("x"));
  EXPECT_TRUE(S1 == S2);
  S2.transition(A, StateRef::name("y"));
  EXPECT_FALSE(S1 == S2);
}

TEST(HeldKeySet, RenameKeys) {
  KeyTable T;
  KeySym A = T.create("A", KeyTable::Origin::Local, SourceLoc{});
  KeySym B = T.create("B", KeyTable::Origin::Local, SourceLoc{});
  KeySym C = T.create("C", KeyTable::Origin::Local, SourceLoc{});
  HeldKeySet S;
  S.add(A, StateRef::name("s"));
  S.add(C, StateRef::top());
  S.renameKeys({{A, B}});
  EXPECT_FALSE(S.contains(A));
  EXPECT_TRUE(S.contains(B));
  EXPECT_EQ(S.stateOf(B), StateRef::name("s"));
  EXPECT_TRUE(S.contains(C));
}

TEST(HeldKeySet, DeterministicIteration) {
  KeyTable T;
  std::vector<KeySym> Keys;
  for (int I = 0; I != 16; ++I)
    Keys.push_back(T.create("K", KeyTable::Origin::Local, SourceLoc{}));
  HeldKeySet S;
  for (auto It = Keys.rbegin(); It != Keys.rend(); ++It)
    S.add(*It, StateRef::top());
  KeySym Prev = 0;
  for (const auto &[K, St] : S) {
    (void)St;
    EXPECT_GT(K, Prev);
    Prev = K;
  }
}

TEST(HeldKeySet, Render) {
  KeyTable T;
  KeySym K = T.create("R", KeyTable::Origin::Local, SourceLoc{});
  HeldKeySet S;
  S.add(K, StateRef::name("open"));
  std::string Str = S.str(T);
  EXPECT_NE(Str.find("R"), std::string::npos);
  EXPECT_NE(Str.find("open"), std::string::npos);
}

} // namespace
