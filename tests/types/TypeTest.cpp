//===- TypeTest.cpp -------------------------------------------------------===//

#include "types/Substitution.h"
#include "types/TypeContext.h"

#include <gtest/gtest.h>

using namespace vault;

namespace {

class TypeTest : public ::testing::Test {
protected:
  TypeContext TC;
  KeySym key(const char *N) {
    return TC.keys().create(N, KeyTable::Origin::Local, SourceLoc{});
  }
};

TEST_F(TypeTest, PrimSingletons) {
  EXPECT_EQ(TC.intType(), TC.primType(PrimKind::Int));
  EXPECT_TRUE(typeEquals(TC.intType(), TC.intType()));
  EXPECT_FALSE(typeEquals(TC.intType(), TC.boolType()));
}

TEST_F(TypeTest, TrackedEqualityIsKeySensitive) {
  KeySym A = key("A"), B = key("B");
  const Type *TA = TC.make<TrackedType>(TC.intType(), A);
  const Type *TA2 = TC.make<TrackedType>(TC.intType(), A);
  const Type *TB = TC.make<TrackedType>(TC.intType(), B);
  EXPECT_TRUE(typeEquals(TA, TA2));
  EXPECT_FALSE(typeEquals(TA, TB));
}

TEST_F(TypeTest, GuardedEquality) {
  KeySym A = key("A");
  std::vector<GuardedType::Guard> G1{{A, StateRef::name("open")}};
  std::vector<GuardedType::Guard> G2{{A, StateRef::name("open")}};
  std::vector<GuardedType::Guard> G3{{A, StateRef::name("closed")}};
  const Type *T1 = TC.make<GuardedType>(G1, TC.intType());
  const Type *T2 = TC.make<GuardedType>(G2, TC.intType());
  const Type *T3 = TC.make<GuardedType>(G3, TC.intType());
  EXPECT_TRUE(typeEquals(T1, T2));
  EXPECT_FALSE(typeEquals(T1, T3));
}

TEST_F(TypeTest, ErrorTypeAbsorbs) {
  EXPECT_TRUE(typeEquals(TC.errorType(), TC.intType()));
  EXPECT_TRUE(typeEquals(TC.intType(), TC.errorType()));
}

TEST_F(TypeTest, CollectKeys) {
  KeySym A = key("A"), B = key("B");
  std::vector<GuardedType::Guard> G{{B, StateRef::top()}};
  const Type *T = TC.make<TrackedType>(
      TC.make<GuardedType>(G, TC.intType()), A);
  std::vector<KeySym> Keys;
  collectKeys(T, Keys);
  ASSERT_EQ(Keys.size(), 2u);
  EXPECT_EQ(Keys[0], A);
  EXPECT_EQ(Keys[1], B);
}

TEST_F(TypeTest, SubstituteKeys) {
  KeySym A = key("A"), B = key("B");
  const Type *T = TC.make<TrackedType>(TC.intType(), A);
  Subst S;
  S.Keys[A] = B;
  const Type *T2 = substType(TC, T, S);
  EXPECT_EQ(cast<TrackedType>(T2)->key(), B);
  // Original unchanged.
  EXPECT_EQ(cast<TrackedType>(T)->key(), A);
}

TEST_F(TypeTest, SubstituteStates) {
  StateRef V = StateRef::var(7);
  const Type *T = TC.make<AnonTrackedType>(TC.intType(), V);
  Subst S;
  S.StateVars[7] = StateRef::name("ready");
  const Type *T2 = substType(TC, T, S);
  EXPECT_EQ(cast<AnonTrackedType>(T2)->state(), StateRef::name("ready"));
}

TEST_F(TypeTest, EmptySubstIsIdentity) {
  KeySym A = key("A");
  const Type *T = TC.make<TrackedType>(TC.intType(), A);
  Subst S;
  EXPECT_EQ(substType(TC, T, S), T);
}

TEST_F(TypeTest, TupleAndArray) {
  const Type *Tup = TC.make<TupleType>(
      std::vector<const Type *>{TC.intType(), TC.boolType()});
  const Type *Tup2 = TC.make<TupleType>(
      std::vector<const Type *>{TC.intType(), TC.boolType()});
  EXPECT_TRUE(typeEquals(Tup, Tup2));
  const Type *Arr = TC.make<ArrayType>(TC.byteType());
  EXPECT_TRUE(typeEquals(Arr, TC.make<ArrayType>(TC.byteType())));
  EXPECT_FALSE(typeEquals(Arr, TC.make<ArrayType>(TC.intType())));
}

TEST_F(TypeTest, TypeCarriesKeys) {
  KeySym A = key("A");
  EXPECT_FALSE(typeCarriesKeys(TC.intType()));
  EXPECT_TRUE(typeCarriesKeys(TC.make<TrackedType>(TC.intType(), A)));
  EXPECT_TRUE(
      typeCarriesKeys(TC.make<AnonTrackedType>(TC.intType(), StateRef::top())));
  const Type *Tup = TC.make<TupleType>(std::vector<const Type *>{
      TC.intType(), TC.make<TrackedType>(TC.intType(), A)});
  EXPECT_TRUE(typeCarriesKeys(Tup));
}

TEST_F(TypeTest, TypeStrMentionsKeyNames) {
  KeySym A = key("MyKey");
  const Type *T = TC.make<TrackedType>(TC.intType(), A);
  EXPECT_NE(typeStr(T, TC.keys()).find("MyKey"), std::string::npos);
}

TEST_F(TypeTest, Statesets) {
  const Stateset *S = TC.addStateset("L", {{"a"}, {"b"}});
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(TC.findStateset("L"), S);
  EXPECT_EQ(TC.findStateset("missing"), nullptr);
  EXPECT_EQ(TC.addStateset("L", {{"x"}}), nullptr) << "duplicate rejected";
  EXPECT_TRUE(TC.isKnownStateName("a"));
  EXPECT_FALSE(TC.isKnownStateName("zz"));
}

} // namespace
