//===- StateSetTest.cpp ---------------------------------------------------===//

#include "types/StateSet.h"

#include <gtest/gtest.h>

using namespace vault;

namespace {

Stateset irql() {
  return Stateset("IRQ_LEVEL", {{"PASSIVE"}, {"APC"}, {"DISPATCH"}, {"DIRQL"}});
}

TEST(Stateset, ChainOrder) {
  Stateset S = irql();
  EXPECT_TRUE(S.leq("PASSIVE", "DIRQL"));
  EXPECT_TRUE(S.leq("APC", "APC"));
  EXPECT_FALSE(S.leq("DISPATCH", "APC"));
  EXPECT_TRUE(S.lt("PASSIVE", "APC"));
  EXPECT_FALSE(S.lt("APC", "APC"));
}

TEST(Stateset, SameRankIncomparable) {
  Stateset S("colors", {{"red", "green"}, {"top"}});
  EXPECT_FALSE(S.leq("red", "green"));
  EXPECT_FALSE(S.leq("green", "red"));
  EXPECT_TRUE(S.leq("red", "red"));
  EXPECT_TRUE(S.leq("red", "top"));
  EXPECT_TRUE(S.leq("green", "top"));
}

TEST(Stateset, Contains) {
  Stateset S = irql();
  EXPECT_TRUE(S.contains("DISPATCH"));
  EXPECT_FALSE(S.contains("bogus"));
  EXPECT_EQ(S.allStates().size(), 4u);
}

TEST(StateRef, Equality) {
  EXPECT_EQ(StateRef::top(), StateRef::top());
  EXPECT_EQ(StateRef::name("open"), StateRef::name("open"));
  EXPECT_NE(StateRef::name("open"), StateRef::name("closed"));
  EXPECT_NE(StateRef::top(), StateRef::name("open"));
  EXPECT_EQ(StateRef::var(3), StateRef::var(3));
  EXPECT_NE(StateRef::var(3), StateRef::var(4));
}

TEST(StateSatisfies, TopRequirementMatchesAnything) {
  EXPECT_TRUE(stateSatisfies(StateRef::name("x"), StateRef::top(), nullptr));
  EXPECT_TRUE(stateSatisfies(StateRef::top(), StateRef::top(), nullptr));
  EXPECT_TRUE(stateSatisfies(StateRef::var(1), StateRef::top(), nullptr));
}

TEST(StateSatisfies, NameRequirementExact) {
  EXPECT_TRUE(
      stateSatisfies(StateRef::name("raw"), StateRef::name("raw"), nullptr));
  EXPECT_FALSE(
      stateSatisfies(StateRef::name("raw"), StateRef::name("named"), nullptr));
  EXPECT_FALSE(
      stateSatisfies(StateRef::top(), StateRef::name("raw"), nullptr));
  // A symbolic held state never satisfies a concrete name.
  EXPECT_FALSE(
      stateSatisfies(StateRef::var(0), StateRef::name("raw"), nullptr));
}

TEST(StateSatisfies, BoundedVariable) {
  Stateset S = irql();
  StateRef UpToDispatch = StateRef::var(0, "DISPATCH");
  EXPECT_TRUE(stateSatisfies(StateRef::name("PASSIVE"), UpToDispatch, &S));
  EXPECT_TRUE(stateSatisfies(StateRef::name("DISPATCH"), UpToDispatch, &S));
  EXPECT_FALSE(stateSatisfies(StateRef::name("DIRQL"), UpToDispatch, &S));
  // Strict bound.
  StateRef BelowDispatch = StateRef::var(0, "DISPATCH", /*Strict=*/true);
  EXPECT_FALSE(stateSatisfies(StateRef::name("DISPATCH"), BelowDispatch, &S));
  EXPECT_TRUE(stateSatisfies(StateRef::name("APC"), BelowDispatch, &S));
}

TEST(StateSatisfies, SymbolicHeldAgainstBound) {
  Stateset S = irql();
  // Held <= APC implies held <= DISPATCH.
  EXPECT_TRUE(stateSatisfies(StateRef::var(1, "APC"),
                             StateRef::var(2, "DISPATCH"), &S));
  // Held <= DISPATCH does not imply held <= APC.
  EXPECT_FALSE(stateSatisfies(StateRef::var(1, "DISPATCH"),
                              StateRef::var(2, "APC"), &S));
  // Same variable trivially satisfies itself.
  EXPECT_TRUE(
      stateSatisfies(StateRef::var(7, "APC"), StateRef::var(7, "APC"), &S));
  // Unbounded requirement accepts anything.
  EXPECT_TRUE(stateSatisfies(StateRef::var(1), StateRef::var(2), &S));
}

TEST(StateSatisfies, UnboundedHeldVarFailsBound) {
  Stateset S = irql();
  EXPECT_FALSE(
      stateSatisfies(StateRef::var(1), StateRef::var(2, "DISPATCH"), &S));
}

} // namespace
