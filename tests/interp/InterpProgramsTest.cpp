//===- InterpProgramsTest.cpp - Larger interpreted programs ---------------===//

#include "TestUtil.h"

#include "corpus/Corpus.h"
#include "interp/Interp.h"

using namespace vault;
using namespace vault::test;
using vault::interp::Interp;

namespace {

std::pair<std::unique_ptr<VaultCompiler>, std::unique_ptr<Interp>>
run(const std::string &Src, const std::string &Prelude = "") {
  auto C = check(Src, Prelude);
  EXPECT_FALSE(C->diags().hasErrors()) << C->diags().render();
  auto I = std::make_unique<Interp>(*C);
  I->run("main");
  return {std::move(C), std::move(I)};
}

TEST(InterpPrograms, Recursion) {
  auto [C, I] = run(R"(
void print_int(int n);
int fib(int n) {
  if (n < 2) {
    return n;
  }
  return fib(n - 1) + fib(n - 2);
}
void main() { print_int(fib(15)); }
)");
  ASSERT_FALSE(I->trapped()) << I->trapMessage();
  EXPECT_EQ(I->output()[0], "610");
}

TEST(InterpPrograms, MutualRecursion) {
  auto [C, I] = run(R"(
void print(string s);
bool isOdd(int n);
bool isEven(int n) {
  if (n == 0) { return true; }
  return isOdd(n - 1);
}
bool isOdd(int n) {
  if (n == 0) { return false; }
  return isEven(n - 1);
}
void main() {
  if (isEven(10)) { print("even"); } else { print("odd"); }
  if (isOdd(7)) { print("odd"); } else { print("even"); }
}
)");
  ASSERT_FALSE(I->trapped()) << I->trapMessage();
  ASSERT_EQ(I->output().size(), 2u);
  EXPECT_EQ(I->output()[0], "even");
  EXPECT_EQ(I->output()[1], "odd");
}

TEST(InterpPrograms, LinkedListOfRegions) {
  // The Fig. 4 data structure, executed: build, walk, tear down.
  auto [C, I] = run(R"(
variant reglist [ 'Nil | 'Cons(tracked region, tracked reglist) ];
int teardown(tracked reglist list) {
  switch (list) {
    case 'Nil:
      return 0;
    case 'Cons(rgn, rest):
      Region.delete(rgn);
      return 1 + teardown(rest);
  }
}
void main() {
  tracked(A) region a = Region.create();
  tracked(B) region b = Region.create();
  tracked(C2) region c = Region.create();
  tracked reglist list = 'Cons(a, 'Cons(b, 'Cons(c, 'Nil)));
  print_int(teardown(list));
}
)",
                    regionPrelude());
  ASSERT_FALSE(I->trapped()) << I->trapMessage();
  EXPECT_EQ(I->output()[0], "3");
  EXPECT_EQ(I->regions().leakedRegions().size(), 0u);
  EXPECT_EQ(I->totalViolations(), 0u);
}

TEST(InterpPrograms, PipelineProgramComputes) {
  auto C = std::make_unique<VaultCompiler>();
  C->addSource("p.vlt", corpus::loadInclude("region.vlt") +
                            corpus::loadInclude("io.vlt") + R"(
struct tokens { int count; }
void main() {
  tracked(L) region lexRgn = Region.create();
  L:tokens toks = new(lexRgn) tokens {count=99;};
  print_int(toks.count);
  Region.delete(lexRgn);
}
)");
  ASSERT_TRUE(C->check()) << C->diags().render();
  Interp I(*C);
  ASSERT_TRUE(I.run("main")) << I.trapMessage();
  EXPECT_EQ(I.output()[0], "99");
}

TEST(InterpPrograms, GdiDisplayListContents) {
  auto C = std::make_unique<VaultCompiler>();
  C->addSource("g.vlt", corpus::loadInclude("gdi.vlt") + R"(
void main() {
  HWND win = sim_window("t");
  tracked(@plain) HDC dc = BeginPaint(win);
  MoveTo(dc, 1, 2);
  LineTo(dc, 3, 4);
  EndPaint(win, dc);
}
)");
  ASSERT_TRUE(C->check()) << C->diags().render();
  Interp I(*C);
  ASSERT_TRUE(I.run("main")) << I.trapMessage();
  ASSERT_EQ(I.gdi().displayList().size(), 1u);
  EXPECT_EQ(I.gdi().displayList()[0].X0, 1);
  EXPECT_EQ(I.gdi().displayList()[0].Y0, 2);
  EXPECT_EQ(I.gdi().displayList()[0].X1, 3);
  EXPECT_EQ(I.gdi().displayList()[0].Y1, 4);
}

TEST(InterpPrograms, EarlyReturnSkipsRest) {
  auto [C, I] = run(R"(
void print(string s);
int pick(bool b) {
  if (b) {
    return 1;
  }
  print("fallthrough");
  return 2;
}
void main() {
  print_int(pick(true));
  print_int(pick(false));
}
void print_int(int n);
)");
  ASSERT_FALSE(I->trapped()) << I->trapMessage();
  ASSERT_EQ(I->output().size(), 3u);
  EXPECT_EQ(I->output()[0], "1");
  EXPECT_EQ(I->output()[1], "fallthrough");
  EXPECT_EQ(I->output()[2], "2");
}

TEST(InterpPrograms, DefaultArmTaken) {
  auto [C, I] = run(R"(
void print(string s);
variant v [ 'A | 'B | 'C ];
void classify(v x) {
  switch (x) {
    case 'A:
      print("a");
    default:
      print("other");
  }
}
void main() {
  classify('A);
  classify('B);
  classify('C);
}
)");
  ASSERT_FALSE(I->trapped()) << I->trapMessage();
  ASSERT_EQ(I->output().size(), 3u);
  EXPECT_EQ(I->output()[0], "a");
  EXPECT_EQ(I->output()[1], "other");
  EXPECT_EQ(I->output()[2], "other");
}

} // namespace
