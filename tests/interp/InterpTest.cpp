//===- InterpTest.cpp - Interpreter semantics -----------------------------===//

#include "TestUtil.h"

#include "interp/Interp.h"

using namespace vault;
using namespace vault::test;
using vault::interp::Interp;
using vault::interp::Value;

namespace {

/// Checks then runs `main`, returning the interpreter for inspection.
std::pair<std::unique_ptr<VaultCompiler>, std::unique_ptr<Interp>>
run(const std::string &Src, const std::string &Prelude = "") {
  auto C = check(Src, Prelude);
  auto I = std::make_unique<Interp>(*C);
  I->run("main");
  return {std::move(C), std::move(I)};
}

TEST(Interp, ArithmeticAndOutput) {
  auto [C, I] = run(R"(
void print_int(int n);
int square(int x) { return x * x; }
void main() {
  print_int(square(7));
  print_int(10 % 3);
  print_int(0 - 5);
}
)");
  ASSERT_FALSE(I->trapped()) << I->trapMessage();
  ASSERT_EQ(I->output().size(), 3u);
  EXPECT_EQ(I->output()[0], "49");
  EXPECT_EQ(I->output()[1], "1");
  EXPECT_EQ(I->output()[2], "-5");
}

TEST(Interp, ControlFlow) {
  auto [C, I] = run(R"(
void print_int(int n);
int collatzSteps(int n) {
  int steps = 0;
  while (n != 1) {
    if (n % 2 == 0) {
      n = n / 2;
    } else {
      n = 3 * n + 1;
    }
    steps++;
  }
  return steps;
}
void main() { print_int(collatzSteps(6)); }
)");
  ASSERT_FALSE(I->trapped()) << I->trapMessage();
  ASSERT_EQ(I->output().size(), 1u);
  EXPECT_EQ(I->output()[0], "8");
}

TEST(Interp, StructsAndFields) {
  auto [C, I] = run(R"(
void print_int(int n);
struct p { int x; int y; }
void main() {
  p a = new p {x=3; y=4;};
  a.x = a.x + a.y;
  print_int(a.x);
}
)");
  ASSERT_FALSE(I->trapped()) << I->trapMessage();
  EXPECT_EQ(I->output()[0], "7");
}

TEST(Interp, VariantsAndSwitch) {
  auto [C, I] = run(R"(
void print(string s);
variant shape [ 'Circle(int) | 'Rect(int, int) ];
int area(shape s) {
  switch (s) {
    case 'Circle(r):
      return 3 * r * r;
    case 'Rect(w, h):
      return w * h;
  }
}
void print_int(int n);
void main() {
  print_int(area('Circle(2)));
  print_int(area('Rect(3, 4)));
}
)");
  ASSERT_FALSE(I->trapped()) << I->trapMessage();
  EXPECT_EQ(I->output()[0], "12");
  EXPECT_EQ(I->output()[1], "12");
}

TEST(Interp, RegionsLifecycle) {
  auto [C, I] = run(std::string(R"(
void main() {
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {x=1; y=2;};
  pt.x++;
  print_int(pt.x);
  Region.delete(rgn);
}
)"),
                    regionPrelude());
  ASSERT_FALSE(I->trapped()) << I->trapMessage();
  EXPECT_EQ(I->output()[0], "2");
  EXPECT_EQ(I->totalViolations(), 0u);
  EXPECT_TRUE(I->regions().leakedRegions().empty());
}

TEST(Interp, DanglingAccessDetectedDynamically) {
  auto [C, I] = run(std::string(R"(
void main() {
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {x=1; y=2;};
  Region.delete(rgn);
  pt.x++;
}
)"),
                    regionPrelude());
  EXPECT_GE(I->totalViolations(), 1u);
}

TEST(Interp, LeakedRegionDetectedAtTeardown) {
  auto [C, I] = run(std::string(R"(
void main() {
  tracked(R) region rgn = Region.create();
}
)"),
                    regionPrelude());
  EXPECT_EQ(I->regions().leakedRegions().size(), 1u);
}

TEST(Interp, TrackedHeapFreeSemantics) {
  auto [C, I] = run(std::string(R"(
void main() {
  tracked(K) point p = new tracked point {x=1; y=2;};
  free(p);
  free(p);
}
)"),
                    regionPrelude());
  EXPECT_GE(I->totalViolations(), 1u) << "double free must be flagged";
}

TEST(Interp, NestedFunctionClosure) {
  auto [C, I] = run(R"(
void print_int(int n);
void main() {
  int base = 10;
  int addBase(int x) { return x + base; }
  print_int(addBase(5));
}
)");
  ASSERT_FALSE(I->trapped()) << I->trapMessage();
  EXPECT_EQ(I->output()[0], "15");
}

TEST(Interp, SocketsEndToEnd) {
  auto [C, I] = run(R"(
type sock;
variant domain [ 'UNIX | 'INET ];
variant comm_style [ 'STREAM | 'DGRAM ];
struct sockaddr { int port; }
tracked(@raw) sock socket(domain, comm_style, int);
void bind(tracked(S) sock, sockaddr) [S@raw->named];
void listen(tracked(S) sock, int) [S@named->listening];
tracked(N) sock accept(tracked(S) sock, sockaddr) [S@listening, new N@ready];
void receive(tracked(S) sock, byte[]) [S@ready];
void close(tracked(S) sock) [-S];
tracked(@ready) sock sim_client(int port);
void sim_send(tracked(CC) sock, string msg) [CC@ready];
byte[] make_buffer(int size);
void main() {
  sockaddr addr = new sockaddr {port=4242;};
  tracked(@raw) sock s = socket('UNIX, 'STREAM, 0);
  bind(s, addr);
  listen(s, 2);
  tracked(@ready) sock cl = sim_client(4242);
  tracked(N) sock conn = accept(s, addr);
  sim_send(cl, "hi");
  byte[] buf = make_buffer(4);
  receive(conn, buf);
  close(cl);
  close(conn);
  close(s);
}
)");
  ASSERT_FALSE(I->trapped()) << I->trapMessage();
  EXPECT_EQ(I->totalViolations(), 0u);
  EXPECT_TRUE(I->sockets().leakedSockets().empty());
}

TEST(Interp, StepBudgetStopsInfiniteLoops) {
  auto C = check("void main() { while (true) { } }");
  Interp I(*C);
  I.MaxSteps = 10000;
  EXPECT_FALSE(I.run("main"));
  EXPECT_TRUE(I.trapped());
}

TEST(Interp, MissingMainTraps) {
  auto C = check("void notmain() {}");
  Interp I(*C);
  EXPECT_FALSE(I.run("main"));
}

TEST(Interp, CustomBuiltin) {
  auto C = check("int magic(); void print_int(int n);"
                 "void main() { print_int(magic()); }");
  Interp I(*C);
  I.registerBuiltin("magic", [](interp::Machine &, std::vector<Value> &) {
    return Value::intV(1234);
  });
  ASSERT_TRUE(I.run("main")) << I.trapMessage();
  EXPECT_EQ(I.output()[0], "1234");
}

TEST(Interp, ShortCircuitEvaluation) {
  auto [C, I] = run(R"(
void print(string s);
bool boom() { print("boom"); return true; }
void main() {
  bool a = false && boom();
  bool b = true || boom();
  print("done");
}
)");
  ASSERT_FALSE(I->trapped()) << I->trapMessage();
  ASSERT_EQ(I->output().size(), 1u);
  EXPECT_EQ(I->output()[0], "done");
}

} // namespace
