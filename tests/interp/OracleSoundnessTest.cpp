//===- OracleSoundnessTest.cpp - The soundness property over the corpus ---===//
//
// The central property of the paper: if the Vault checker accepts a
// program, no run of that program violates a resource protocol. The
// dynamic oracle (interpreter + substrates) provides the observation;
// the corpus provides the programs. Also checks the converse corpus
// annotations: statically rejected programs behave dynamically as the
// index predicts (violating on hot paths, silent on cold ones — the
// evidence for the paper's testing-is-not-enough argument).
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "interp/Interp.h"

#include <gtest/gtest.h>

using namespace vault;

namespace {

unsigned dynamicDetections(interp::Interp &I) {
  return I.totalViolations() +
         static_cast<unsigned>(I.regions().leakedRegions().size()) +
         static_cast<unsigned>(I.sockets().leakedSockets().size()) +
         static_cast<unsigned>(I.gdi().leakedDcs().size()) +
         static_cast<unsigned>(I.locks().leakedMutexes().size());
}

class OracleSoundness : public ::testing::TestWithParam<corpus::ProgramInfo> {
};

TEST_P(OracleSoundness, AcceptedProgramsRunClean) {
  const auto &P = GetParam();
  if (!P.Runnable)
    GTEST_SKIP() << "not runnable";
  auto C = corpus::check(P.Name);
  if (!P.ExpectAccept)
    GTEST_SKIP() << "rejected program (covered by DynamicBehaviour)";
  ASSERT_FALSE(C->diags().hasErrors()) << C->diags().render();

  interp::Interp I(*C);
  ASSERT_TRUE(I.run("main")) << I.trapMessage();
  EXPECT_EQ(dynamicDetections(I), 0u)
      << "checker-accepted program violated a protocol at run time";
}

TEST_P(OracleSoundness, DynamicBehaviourMatchesAnnotation) {
  const auto &P = GetParam();
  if (!P.Runnable || P.ExpectAccept)
    GTEST_SKIP();
  auto C = corpus::check(P.Name);
  ASSERT_TRUE(C->diags().hasErrors()) << "defect not rejected statically";

  interp::Interp I(*C);
  I.run("main");
  EXPECT_EQ(dynamicDetections(I) > 0, P.ExpectDynViolations)
      << "dynamic oracle disagrees with the corpus annotation";
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, OracleSoundness, ::testing::ValuesIn(corpus::index()),
    [](const ::testing::TestParamInfo<corpus::ProgramInfo> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST(OracleSoundness, StaticCoversStrictlyMoreThanOneDynamicRun) {
  unsigned Defects = 0, Static = 0, Dynamic = 0;
  for (const auto &P : corpus::index()) {
    if (P.ExpectAccept)
      continue;
    ++Defects;
    auto C = corpus::check(P.Name);
    if (C->diags().hasErrors())
      ++Static;
    if (P.Runnable) {
      interp::Interp I(*C);
      I.run("main");
      if (dynamicDetections(I) > 0)
        ++Dynamic;
    }
  }
  EXPECT_GT(Defects, 10u);
  EXPECT_EQ(Static, Defects) << "Vault catches every seeded defect";
  EXPECT_LT(Dynamic, Static) << "a single test run must miss some defects "
                                "(cold paths, silent leaks)";
}

} // namespace
