//===- CompletionRoutineTests.cpp - Paper §4.3 / Figure 7 -----------------===//

#include "TestUtil.h"

using namespace vault;
using namespace vault::test;

namespace {

TEST(CompletionRoutines, Fig7Accepted) {
  auto C = check(R"(
NTSTATUS PnpRequest(DEVICE_OBJECT Dev, tracked(I) IRP Irp,
                    DEVICE_OBJECT nextDriver) [-I] {
  KEVENT<I> IrpIsBack = KeInitializeEvent(Irp);
  tracked COMPLETION_RESULT<I> RegainIrp(DEVICE_OBJECT D,
                                         tracked(I) IRP Irp2) [-I] {
    KeSignalEvent(IrpIsBack);
    return 'MoreProcessingRequired;
  }
  IoSetCompletionRoutine(Irp, RegainIrp);
  IoCallDriver(nextDriver, Irp);
  KeWaitForEvent(IrpIsBack);
  IoCompleteRequest(Irp, 0);
  return 0;
}
)",
                 kernelPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(CompletionRoutines, Footnote10SignalThenFinishedRejected) {
  // "If a completion routine consumes its IRP parameter, it has no
  // choice but to return 'MoreProcessingRequired, since no other
  // option will type check."
  auto C = check(R"(
NTSTATUS PnpRequest(DEVICE_OBJECT Dev, tracked(I) IRP Irp,
                    DEVICE_OBJECT nextDriver) [-I] {
  KEVENT<I> IrpIsBack = KeInitializeEvent(Irp);
  tracked COMPLETION_RESULT<I> RegainIrp(DEVICE_OBJECT D,
                                         tracked(I) IRP Irp2) [-I] {
    KeSignalEvent(IrpIsBack);
    return 'Finished(0); // error: key gone after signaling
  }
  IoSetCompletionRoutine(Irp, RegainIrp);
  IoCallDriver(nextDriver, Irp);
  KeWaitForEvent(IrpIsBack);
  IoCompleteRequest(Irp, 0);
  return 0;
}
)",
                 kernelPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyNotHeld);
}

TEST(CompletionRoutines, FinishedWithoutSignalAccepted) {
  // A routine that does NOT pass the key away may return 'Finished.
  auto C = check(R"(
void install(DEVICE_OBJECT Dev, tracked(I) IRP Irp) [I] {
  tracked COMPLETION_RESULT<I> Done(DEVICE_OBJECT D,
                                    tracked(I) IRP Irp2) [-I] {
    return 'Finished(0);
  }
  IoSetCompletionRoutine(Irp, Done);
}
)",
                 kernelPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(CompletionRoutines, RoutineKeepingTheKeyWithoutReportRejected) {
  // A routine whose every path holds I but returns the key-free
  // constructor violates its [-I] effect.
  auto C = check(R"(
void install(DEVICE_OBJECT Dev, tracked(I) IRP Irp) [I] {
  tracked COMPLETION_RESULT<I> Bad(DEVICE_OBJECT D,
                                   tracked(I) IRP Irp2) [-I] {
    return 'MoreProcessingRequired; // BUG: I neither consumed nor...
  }
  IoSetCompletionRoutine(Irp, Bad);
}
)",
                 kernelPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyLeaked);
}

TEST(CompletionRoutines, MismatchedRoutineSignatureRejected) {
  // A routine with the wrong effect cannot be installed.
  auto C = check(R"(
void install(DEVICE_OBJECT Dev, tracked(I) IRP Irp) [I] {
  tracked COMPLETION_RESULT<I> Wrong(DEVICE_OBJECT D,
                                     tracked(I) IRP Irp2) [I] {
    return 'MoreProcessingRequired;
  }
  IoSetCompletionRoutine(Irp, Wrong);
}
)",
                 kernelPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::SemaTypeMismatch);
}

TEST(CompletionRoutines, NestedFunctionCapturesEventOk) {
  // KEVENT<I> carries no key itself, so capturing it is fine (tested
  // by Fig7Accepted); capturing a *tracked* value is not.
  auto C = check(R"(
NTSTATUS f(DEVICE_OBJECT Dev, tracked(I) IRP Irp,
           DEVICE_OBJECT next) [-I] {
  tracked(J) IRP other = AllocIrp();
  tracked COMPLETION_RESULT<I> Bad(DEVICE_OBJECT D,
                                   tracked(I) IRP Irp2) [-I] {
    IrpSetInformation(other, 1); // error: captures a tracked local
    IoCompleteRequest(Irp2, 0);
    return 'MoreProcessingRequired;
  }
  IoSetCompletionRoutine(Irp, Bad);
  IoCallDriver(next, Irp);
  IoCompleteRequest(other, 0);
  return 0;
}
tracked(N) IRP AllocIrp() [new N];
)",
                 kernelPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowCaptureTracked);
}

} // namespace
