//===- JoinPointTests.cpp - Paper §2.4 / Figure 5 join points -------------===//

#include "TestUtil.h"

using namespace vault;
using namespace vault::test;

namespace {

TEST(JoinPoints, Fig5Rejected) {
  auto C = check(R"(
void main() {
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {x=4; y=2;};
  int x = pt.x;
  if (x > 0) {
    pt.y = 0;
    Region.delete(rgn);
  } else {
    pt.y = x;
  }
  if (x <= 0)
    Region.delete(rgn);
}
)",
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowJoinMismatch);
}

TEST(JoinPoints, KeyedVariantRewriteAccepted) {
  auto C = check(R"(
variant holds<key K> [ 'Deleted | 'Alive {K} ];
void main() {
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {x=4; y=2;};
  tracked holds<R> flag;
  if (pt.x > 0) {
    pt.y = 0;
    Region.delete(rgn);
    flag = 'Deleted;
  } else {
    pt.y = pt.x;
    flag = 'Alive{R};
  }
  switch (flag) {
    case 'Deleted:
      print("gone");
    case 'Alive:
      Region.delete(rgn);
  }
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(JoinPoints, BalancedBranchesAccepted) {
  auto C = check(R"(
void main(bool b) {
  tracked(R) region rgn = Region.create();
  if (b) {
    R:point p = new(rgn) point {x=1;};
    p.x++;
  } else {
    R:point q = new(rgn) point {x=2;};
    q.x--;
  }
  Region.delete(rgn);
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(JoinPoints, LocalKeysCanonicalizedThroughVariables) {
  // Both branches create a *different* fresh region bound to the same
  // variable; the join abstracts the key names (paper §3).
  auto C = check(R"(
void main(bool b) {
  tracked region r = Region.create();
  if (b) {
    Region.delete(r);
    r = Region.create();
  }
  Region.delete(r);
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(JoinPoints, StateMismatchAtJoinRejected) {
  auto C = check(R"(
type sock;
tracked(@raw) sock socket(int d);
void bind(tracked(S) sock) [S@raw->named];
void close(tracked(S) sock) [-S];
void main(bool b) {
  tracked(K) sock s = socket(0);
  if (b) {
    bind(s);
  }
  close(s);
}
)");
  EXPECT_REJECTED_WITH(C, DiagId::FlowJoinMismatch);
}

TEST(JoinPoints, EarlyReturnAvoidsJoin) {
  // An early return is not a join: each exit is checked separately.
  auto C = check(R"(
void main(bool b) {
  tracked(R) region rgn = Region.create();
  if (b) {
    Region.delete(rgn);
    return;
  }
  R:point p = new(rgn) point {x=1;};
  p.x++;
  Region.delete(rgn);
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(JoinPoints, LeakOnOnePathOnly) {
  auto C = check(R"(
void main(bool b) {
  tracked(R) region rgn = Region.create();
  if (b) {
    return; // BUG: leaks rgn on this path only.
  }
  Region.delete(rgn);
}
)",
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyLeaked);
}

TEST(JoinPoints, SwitchArmsMustAgree) {
  auto C = check(R"(
variant choice [ 'Yes | 'No ];
void main(choice c) {
  tracked(R) region rgn = Region.create();
  switch (c) {
    case 'Yes:
      Region.delete(rgn);
    case 'No:
      print("keep");
  }
  // Join of the two arms disagrees on R.
}
)",
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowJoinMismatch);
}

TEST(JoinPoints, SwitchArmsAgreeAccepted) {
  auto C = check(R"(
variant choice [ 'Yes | 'No ];
void main(choice c) {
  tracked(R) region rgn = Region.create();
  switch (c) {
    case 'Yes:
      Region.delete(rgn);
    case 'No:
      Region.delete(rgn);
  }
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(JoinPoints, SwapRenameAtJoinAccepted) {
  // Chain-rename audit (two locals renamed *through each other*): one
  // branch swaps which keys r and s alias, so the join's canonicalizing
  // renaming is the two-cycle {k1->k2, k2->k1}. joinStates tests rename
  // targets against the pre-rename held set but exempts targets that
  // are themselves renamed away; because renameKeys applies the map
  // simultaneously, the swap vacates each slot in the same step and no
  // live keys merge. Both resources remain separately deletable.
  auto C = check(R"(
void main(bool b) {
  tracked region r = Region.create();
  tracked region s = Region.create();
  if (b) {
    tracked region t = r;
    r = s;
    s = t;
  }
  Region.delete(r);
  Region.delete(s);
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(JoinPoints, RenameOntoLiveKeyRejected) {
  // One branch re-aliases r onto s's key while r's own key stays live:
  // canonicalizing the join would have to merge two live keys into
  // one, losing track of a resource. The pre-rename liveness check in
  // joinStates must reject this.
  auto C = check(R"(
void main(bool b) {
  tracked region r = Region.create();
  tracked region s = Region.create();
  if (b) {
    r = s;
  }
  Region.delete(r);
  Region.delete(s);
}
)",
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowJoinMismatch);
}

TEST(JoinPoints, DeadBindingOntoLiveKeyRejected) {
  // r's key is consumed before the branch; one path re-aliases r onto
  // the live key of s. Unifying the dead binding with the live one
  // would let the dangling r pass access checks after the join, so the
  // join must be rejected even though only one of the two keys
  // involved is still held.
  auto C = check(R"(
void main(bool b) {
  tracked region s = Region.create();
  tracked region r = Region.create();
  Region.delete(r);
  if (b) {
    r = s;
  }
  Region.delete(s);
}
)",
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowJoinMismatch);
}

TEST(JoinPoints, NestedIfsJoinCorrectly) {
  auto C = check(R"(
void main(bool a, bool b) {
  tracked(R) region rgn = Region.create();
  if (a) {
    if (b) {
      R:point p = new(rgn) point {x=1;};
      p.x++;
    }
  } else {
    print("else");
  }
  Region.delete(rgn);
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);
}

} // namespace
