//===- JoinPointTests.cpp - Paper §2.4 / Figure 5 join points -------------===//

#include "TestUtil.h"

using namespace vault;
using namespace vault::test;

namespace {

TEST(JoinPoints, Fig5Rejected) {
  auto C = check(R"(
void main() {
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {x=4; y=2;};
  int x = pt.x;
  if (x > 0) {
    pt.y = 0;
    Region.delete(rgn);
  } else {
    pt.y = x;
  }
  if (x <= 0)
    Region.delete(rgn);
}
)",
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowJoinMismatch);
}

TEST(JoinPoints, KeyedVariantRewriteAccepted) {
  auto C = check(R"(
variant holds<key K> [ 'Deleted | 'Alive {K} ];
void main() {
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {x=4; y=2;};
  tracked holds<R> flag;
  if (pt.x > 0) {
    pt.y = 0;
    Region.delete(rgn);
    flag = 'Deleted;
  } else {
    pt.y = pt.x;
    flag = 'Alive{R};
  }
  switch (flag) {
    case 'Deleted:
      print("gone");
    case 'Alive:
      Region.delete(rgn);
  }
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(JoinPoints, BalancedBranchesAccepted) {
  auto C = check(R"(
void main(bool b) {
  tracked(R) region rgn = Region.create();
  if (b) {
    R:point p = new(rgn) point {x=1;};
    p.x++;
  } else {
    R:point q = new(rgn) point {x=2;};
    q.x--;
  }
  Region.delete(rgn);
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(JoinPoints, LocalKeysCanonicalizedThroughVariables) {
  // Both branches create a *different* fresh region bound to the same
  // variable; the join abstracts the key names (paper §3).
  auto C = check(R"(
void main(bool b) {
  tracked region r = Region.create();
  if (b) {
    Region.delete(r);
    r = Region.create();
  }
  Region.delete(r);
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(JoinPoints, StateMismatchAtJoinRejected) {
  auto C = check(R"(
type sock;
tracked(@raw) sock socket(int d);
void bind(tracked(S) sock) [S@raw->named];
void close(tracked(S) sock) [-S];
void main(bool b) {
  tracked(K) sock s = socket(0);
  if (b) {
    bind(s);
  }
  close(s);
}
)");
  EXPECT_REJECTED_WITH(C, DiagId::FlowJoinMismatch);
}

TEST(JoinPoints, EarlyReturnAvoidsJoin) {
  // An early return is not a join: each exit is checked separately.
  auto C = check(R"(
void main(bool b) {
  tracked(R) region rgn = Region.create();
  if (b) {
    Region.delete(rgn);
    return;
  }
  R:point p = new(rgn) point {x=1;};
  p.x++;
  Region.delete(rgn);
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(JoinPoints, LeakOnOnePathOnly) {
  auto C = check(R"(
void main(bool b) {
  tracked(R) region rgn = Region.create();
  if (b) {
    return; // BUG: leaks rgn on this path only.
  }
  Region.delete(rgn);
}
)",
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyLeaked);
}

TEST(JoinPoints, SwitchArmsMustAgree) {
  auto C = check(R"(
variant choice [ 'Yes | 'No ];
void main(choice c) {
  tracked(R) region rgn = Region.create();
  switch (c) {
    case 'Yes:
      Region.delete(rgn);
    case 'No:
      print("keep");
  }
  // Join of the two arms disagrees on R.
}
)",
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowJoinMismatch);
}

TEST(JoinPoints, SwitchArmsAgreeAccepted) {
  auto C = check(R"(
variant choice [ 'Yes | 'No ];
void main(choice c) {
  tracked(R) region rgn = Region.create();
  switch (c) {
    case 'Yes:
      Region.delete(rgn);
    case 'No:
      Region.delete(rgn);
  }
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(JoinPoints, NestedIfsJoinCorrectly) {
  auto C = check(R"(
void main(bool a, bool b) {
  tracked(R) region rgn = Region.create();
  if (a) {
    if (b) {
      R:point p = new(rgn) point {x=1;};
      p.x++;
    }
  } else {
    print("else");
  }
  Region.delete(rgn);
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);
}

} // namespace
