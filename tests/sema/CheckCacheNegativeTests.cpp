//===- CheckCacheNegativeTests.cpp - Cache corruption soft-failure --------===//
//
// The on-disk result cache is an accelerator, never an authority: any
// corruption — a torn index row, a truncated entry body, a cache
// directory that stops accepting writes mid-run — must degrade to a
// full re-check with byte-identical diagnostics, not to wrong verdicts
// or crashes.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "sema/Checker.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace vault;

namespace fs = std::filesystem;

namespace {

const char *Program = R"(
interface REGION {
  type region;
  tracked(R) region create() [new R];
  void delete(tracked(R) region) [-R];
}
extern module Region : REGION;
struct point { int x; int y; }

void use(tracked(R) region r) [R] {
  point p = new(r) point { x = 1; y = 2; };
}

void ok() {
  tracked(R) region r = Region.create();
  use(r);
  Region.delete(r);
}

void leaky() {
  tracked(R) region r = Region.create();
  use(r);
}
)";

struct CacheRun {
  bool Accept = false;
  std::string Render;
  VaultCompiler::Stats Stats;
};

CacheRun checkWithCache(const std::string &CacheDir) {
  VaultCompiler C;
  if (!CacheDir.empty())
    C.setCacheDir(CacheDir);
  C.addSource("cachecorrupt.vlt", Program);
  CacheRun R;
  R.Accept = C.check();
  R.Render = C.diags().render();
  R.Stats = C.stats();
  return R;
}

std::string freshDir(const char *Name) {
  fs::path Dir = fs::temp_directory_path() / Name;
  std::error_code EC;
  fs::remove_all(Dir, EC);
  fs::create_directories(Dir, EC);
  return Dir.string();
}

std::string readFile(const fs::path &P) {
  std::ifstream In(P, std::ios::binary);
  std::stringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

void writeFile(const fs::path &P, const std::string &Text) {
  std::ofstream Out(P, std::ios::binary | std::ios::trunc);
  Out << Text;
}

TEST(CheckCacheNegative, TruncatedIndexMidRecordIsSkipped) {
  std::string Dir = freshDir("vault-cache-neg-index");
  CacheRun Uncached = checkWithCache("");
  CacheRun Cold = checkWithCache(Dir);
  ASSERT_EQ(Cold.Render, Uncached.Render);

  // Tear the index mid-record: cut it in the middle of the last row's
  // fingerprint, leaving a structurally valid prefix plus a torn tail.
  fs::path Index = fs::path(Dir) / "index.tsv";
  std::string Text = readFile(Index);
  ASSERT_GT(Text.size(), 10u);
  writeFile(Index, Text.substr(0, Text.size() - 10));

  CacheRun Warm = checkWithCache(Dir);
  EXPECT_EQ(Warm.Render, Uncached.Render);
  EXPECT_EQ(Warm.Accept, Uncached.Accept);
  // Entries are keyed by fingerprint, so replay still succeeds; what
  // the torn index must never cause is a crash or a verdict change.
  EXPECT_TRUE(Warm.Stats.CacheEnabled);

  // A wholly garbage index must behave the same.
  writeFile(Index, "no tabs at all\n\t\tnot-a-fingerprint\nx\ty\tzz\n");
  CacheRun Garbage = checkWithCache(Dir);
  EXPECT_EQ(Garbage.Render, Uncached.Render);
  EXPECT_EQ(Garbage.Accept, Uncached.Accept);
}

TEST(CheckCacheNegative, TruncatedEntryBodyIsAMiss) {
  std::string Dir = freshDir("vault-cache-neg-entry");
  CacheRun Uncached = checkWithCache("");
  CacheRun Cold = checkWithCache(Dir);
  ASSERT_TRUE(Cold.Stats.CacheEnabled);
  ASSERT_GT(Cold.Stats.CacheMisses, 0u);

  // Truncate every entry to a valid magic header with a short body:
  // lookup must treat each as a miss and re-run the flow check.
  unsigned Entries = 0;
  for (const auto &E : fs::directory_iterator(Dir))
    if (E.path().extension() == ".vfc") {
      std::string Text = readFile(E.path());
      ASSERT_GT(Text.size(), 8u);
      writeFile(E.path(), Text.substr(0, 8));
      ++Entries;
    }
  ASSERT_GT(Entries, 0u);

  CacheRun Warm = checkWithCache(Dir);
  EXPECT_EQ(Warm.Render, Uncached.Render);
  EXPECT_EQ(Warm.Accept, Uncached.Accept);
  EXPECT_EQ(Warm.Stats.CacheHits, 0u);
  EXPECT_GT(Warm.Stats.FlowChecksRun, 0u);

  // A later run replays the freshly rewritten entries.
  CacheRun Healed = checkWithCache(Dir);
  EXPECT_EQ(Healed.Render, Uncached.Render);
  EXPECT_GT(Healed.Stats.CacheHits, 0u);
}

TEST(CheckCacheNegative, EntryWithCorruptDiagnosticsIsAMiss) {
  std::string Dir = freshDir("vault-cache-neg-diags");
  CacheRun Uncached = checkWithCache("");
  checkWithCache(Dir);

  for (const auto &E : fs::directory_iterator(Dir))
    if (E.path().extension() == ".vfc")
      writeFile(E.path(), "VFC 1\nmax-held 2\nD 99999 9 bad bad\n");

  CacheRun Warm = checkWithCache(Dir);
  EXPECT_EQ(Warm.Render, Uncached.Render);
  EXPECT_EQ(Warm.Accept, Uncached.Accept);
  EXPECT_EQ(Warm.Stats.CacheHits, 0u);
}

TEST(CheckCacheNegative, UnwritableEntriesSoftFailToFullCheck) {
  // Simulate the cache directory losing writability mid-run: replace
  // each entry path (and its .tmp staging path) with a directory, so
  // every store and the index rewrite fail. (chmod is no barrier when
  // tests run as root; a colliding directory always is.)
  std::string Dir = freshDir("vault-cache-neg-ro");
  CacheRun Uncached = checkWithCache("");
  CacheRun Cold = checkWithCache(Dir);
  ASSERT_TRUE(Cold.Stats.CacheEnabled);

  std::vector<fs::path> Entries;
  for (const auto &E : fs::directory_iterator(Dir))
    if (E.path().extension() == ".vfc")
      Entries.push_back(E.path());
  ASSERT_FALSE(Entries.empty());
  std::error_code EC;
  for (const fs::path &P : Entries) {
    fs::remove(P, EC);
    fs::create_directories(P.string() + ".tmp", EC);
    fs::create_directories(P, EC);
  }
  fs::path Index = fs::path(Dir) / "index.tsv";
  fs::remove(Index, EC);
  fs::create_directories(Index.string() + ".tmp", EC);
  fs::create_directories(Index, EC);

  // Every lookup now fails (the "entry" is a directory) and every
  // store quietly declines; diagnostics must be unchanged.
  CacheRun Broken = checkWithCache(Dir);
  EXPECT_EQ(Broken.Render, Uncached.Render);
  EXPECT_EQ(Broken.Accept, Uncached.Accept);
  EXPECT_EQ(Broken.Stats.CacheHits, 0u);
  EXPECT_GT(Broken.Stats.FlowChecksRun, 0u);

  // And a second broken run too — nothing accumulated anywhere.
  CacheRun Again = checkWithCache(Dir);
  EXPECT_EQ(Again.Render, Uncached.Render);
  EXPECT_EQ(Again.Stats.CacheHits, 0u);
}

} // namespace
