//===- GuardedBorrowTests.cpp - The concurrency protocol domain -----------===//
//
// The guard/borrow lattice: `guarded<K> T` ties a tracked value's key
// to a lock key held in state 'locked', and `borrow`/`endborrow`
// splits a tracked key into a revocable alias valid for a lexical
// region. These tests pin the flow analysis: the happy path, the
// three defect kinds (unguarded access, unlock under a live borrow,
// use after revoke), the Fig. 5 join conservatism applied to borrow
// keys, loop convergence, and determinism of the diagnostics across
// job counts and output formats.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "support/DiagnosticsFormat.h"

#include <gtest/gtest.h>

using namespace vault;
using namespace vault::test;

namespace {

std::unique_ptr<VaultCompiler> checkMutex(const std::string &Source) {
  return check(Source, mutexPrelude());
}

TEST(GuardedBorrow, HappyPathAccepted) {
  auto C = checkMutex(R"(
void main() {
  tracked(M1) mutex m1 = mutex_create();
  mutex_acquire(m1);
  guarded<M1> tracked(D1) cell d1 = cell_new(m1, 7);
  d1.val = 8;
  borrow b = d1;
  b.val = 9;
  endborrow b;
  expect(d1.val == 9);
  free(d1);
  mutex_release(m1);
  mutex_destroy(m1);
}
)");
  EXPECT_ACCEPTED(C);
}

TEST(GuardedBorrow, AccessAfterReleaseIsWrongGuardState) {
  auto C = checkMutex(R"(
void main() {
  tracked(M) mutex m = mutex_create();
  mutex_acquire(m);
  guarded<M> tracked(D) cell d = cell_new(m, 1);
  mutex_release(m);
  d.val = 2;
  mutex_acquire(m);
  free(d);
  mutex_release(m);
  mutex_destroy(m);
}
)");
  EXPECT_REJECTED_WITH(C, DiagId::FlowGuardWrongState);
}

TEST(GuardedBorrow, AccessAfterDestroyIsGuardNotHeld) {
  auto C = checkMutex(R"(
void main() {
  tracked(M) mutex m = mutex_create();
  mutex_acquire(m);
  guarded<M> tracked(D) cell d = cell_new(m, 1);
  mutex_release(m);
  mutex_destroy(m);
  d.val = 2;
  free(d);
}
)");
  EXPECT_REJECTED_WITH(C, DiagId::FlowGuardNotHeld);
}

TEST(GuardedBorrow, ReleaseWhileBorrowLiveRejected) {
  auto C = checkMutex(R"(
void main() {
  tracked(M) mutex m = mutex_create();
  mutex_acquire(m);
  guarded<M> tracked(D) cell d = cell_new(m, 3);
  borrow b = d;
  mutex_release(m);
  endborrow b;
  free(d);
  mutex_destroy(m);
}
)");
  EXPECT_REJECTED_WITH(C, DiagId::FlowGuardedBorrowLive);
}

TEST(GuardedBorrow, DestroyWhileBorrowLiveRejected) {
  // Consuming the guard key outright is as bad as transitioning it.
  auto C = checkMutex(R"(
void main() {
  tracked(M) mutex m = mutex_create();
  tracked(M2) mutex m2 = mutex_create();
  mutex_acquire(m);
  guarded<M> tracked(D) cell d = cell_new(m, 3);
  borrow b = d;
  mutex_release(m);
  mutex_destroy(m);
  endborrow b;
  free(d);
  mutex_destroy(m2);
}
)");
  EXPECT_REJECTED_WITH(C, DiagId::FlowGuardedBorrowLive);
}

TEST(GuardedBorrow, UseAfterRevokeRejected) {
  auto C = checkMutex(R"(
void main() {
  tracked(M) mutex m = mutex_create();
  mutex_acquire(m);
  guarded<M> tracked(D) cell d = cell_new(m, 5);
  borrow b = d;
  b.val = 6;
  endborrow b;
  b.val = 7;
  free(d);
  mutex_release(m);
  mutex_destroy(m);
}
)");
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyNotHeld);
}

TEST(GuardedBorrow, DoubleEndborrowRejected) {
  auto C = checkMutex(R"(
void main() {
  tracked(M) mutex m = mutex_create();
  mutex_acquire(m);
  guarded<M> tracked(D) cell d = cell_new(m, 5);
  borrow b = d;
  endborrow b;
  endborrow b;
  free(d);
  mutex_release(m);
  mutex_destroy(m);
}
)");
  EXPECT_REJECTED_WITH(C, DiagId::FlowBorrowNotLive);
}

TEST(GuardedBorrow, EndborrowOfNonBorrowRejected) {
  auto C = checkMutex(R"(
void main() {
  tracked(M) mutex m = mutex_create();
  mutex_acquire(m);
  guarded<M> tracked(D) cell d = cell_new(m, 5);
  endborrow d;
  free(d);
  mutex_release(m);
  mutex_destroy(m);
}
)");
  EXPECT_REJECTED_WITH(C, DiagId::FlowBorrowNotLive);
}

TEST(GuardedBorrow, BorrowOfNonTrackedRejected) {
  auto C = checkMutex(R"(
void main() {
  int x = 1;
  borrow b = x;
}
)");
  EXPECT_REJECTED_WITH(C, DiagId::SemaNotTracked);
}

TEST(GuardedBorrow, BorrowLiveAtExitRejected) {
  auto C = checkMutex(R"(
void main() {
  tracked(M) mutex m = mutex_create();
  mutex_acquire(m);
  guarded<M> tracked(D) cell d = cell_new(m, 4);
  borrow b = d;
  b.val = b.val + 1;
}
)");
  EXPECT_REJECTED_WITH(C, DiagId::FlowBorrowLiveAtExit);
}

TEST(GuardedBorrow, OneArmRevokeIsAJoinMismatch) {
  // The Fig. 5 conservatism applied to borrow keys: revoking on only
  // one arm leaves the held-key sets disagreeing at the join.
  auto C = checkMutex(R"(
void main() {
  tracked(M) mutex m = mutex_create();
  mutex_acquire(m);
  guarded<M> tracked(D) cell d = cell_new(m, 1);
  borrow b = d;
  if (1 < 2) {
    endborrow b;
  } else {
    b.val = 0;
  }
  free(d);
  mutex_release(m);
  mutex_destroy(m);
}
)");
  EXPECT_REJECTED_WITH(C, DiagId::FlowJoinMismatch);
}

TEST(GuardedBorrow, BothArmsRevokeJoinsCleanly) {
  // renameKeys collapse at the join: each arm revokes the same borrow,
  // the merged state holds the parent key again on both paths.
  auto C = checkMutex(R"(
void main() {
  tracked(M) mutex m = mutex_create();
  mutex_acquire(m);
  guarded<M> tracked(D) cell d = cell_new(m, 1);
  borrow b = d;
  if (1 < 2) {
    b.val = 2;
    endborrow b;
  } else {
    b.val = 3;
    endborrow b;
  }
  free(d);
  mutex_release(m);
  mutex_destroy(m);
}
)");
  EXPECT_ACCEPTED(C);
}

TEST(GuardedBorrow, LoopBorrowConverges) {
  auto C = checkMutex(R"(
void main() {
  tracked(M) mutex m = mutex_create();
  mutex_acquire(m);
  guarded<M> tracked(D) cell d = cell_new(m, 0);
  int i = 0;
  while (i < 4) {
    borrow b = d;
    b.val = b.val + i;
    endborrow b;
    i = i + 1;
  }
  free(d);
  mutex_release(m);
  mutex_destroy(m);
}
)");
  EXPECT_ACCEPTED(C);
}

TEST(GuardedBorrow, BorrowCarriedAcrossLoopBackEdgeRejected) {
  // A borrow made inside the loop but revoked before it started can
  // never converge: the back edge carries a live borrow into a head
  // state that has none.
  auto C = checkMutex(R"(
void main() {
  tracked(M) mutex m = mutex_create();
  mutex_acquire(m);
  guarded<M> tracked(D) cell d = cell_new(m, 0);
  int i = 0;
  while (i < 4) {
    borrow b = d;
    b.val = b.val + i;
    i = i + 1;
  }
  free(d);
  mutex_release(m);
  mutex_destroy(m);
}
)");
  EXPECT_TRUE(C->diags().hasErrors());
}

TEST(GuardedBorrow, TwoIndependentLockDomainsAccepted) {
  auto C = checkMutex(R"(
void main() {
  tracked(MA) mutex ma = mutex_create();
  tracked(MB) mutex mb = mutex_create();
  mutex_acquire(ma);
  mutex_acquire(mb);
  guarded<MA> tracked(DA) cell da = cell_new(ma, 1);
  guarded<MB> tracked(DB) cell db = cell_new(mb, 2);
  borrow p = da;
  borrow q = db;
  p.val = p.val + q.val;
  endborrow q;
  endborrow p;
  free(db);
  mutex_release(mb);
  mutex_destroy(mb);
  free(da);
  mutex_release(ma);
  mutex_destroy(ma);
}
)");
  EXPECT_ACCEPTED(C);
}

TEST(GuardedBorrow, ReleasingTheWrongLockStrikesOnlyItsBorrow) {
  // Releasing mb must not be blamed on the borrow guarded by ma.
  auto C = checkMutex(R"(
void main() {
  tracked(MA) mutex ma = mutex_create();
  tracked(MB) mutex mb = mutex_create();
  mutex_acquire(ma);
  mutex_acquire(mb);
  guarded<MA> tracked(DA) cell da = cell_new(ma, 1);
  guarded<MB> tracked(DB) cell db = cell_new(mb, 2);
  borrow p = da;
  borrow q = db;
  mutex_release(mb);
  endborrow q;
  endborrow p;
  free(da);
  free(db);
  mutex_release(ma);
  mutex_destroy(ma);
  mutex_acquire(mb);
  mutex_release(mb);
  mutex_destroy(mb);
}
)");
  EXPECT_REJECTED_WITH(C, DiagId::FlowGuardedBorrowLive);
  // Exactly one borrow is struck: the one guarded by mb.
  unsigned Struck = 0;
  for (const Diagnostic &D : C->diags().diagnostics())
    if (D.Id == DiagId::FlowGuardedBorrowLive)
      ++Struck;
  EXPECT_EQ(Struck, 1u) << C->diags().render();
}

//===--------------------------------------------------------------------===//
// Determinism and renderer coverage for the new diagnostic codes.
//===--------------------------------------------------------------------===//

const char *DefectProgram = R"(
void main() {
  tracked(M) mutex m = mutex_create();
  mutex_acquire(m);
  guarded<M> tracked(D) cell d = cell_new(m, 3);
  borrow b = d;
  mutex_release(m);
  b.val = 4;
  endborrow b;
  b.val = 5;
  free(d);
  mutex_destroy(m);
}
)";

std::unique_ptr<VaultCompiler> checkAtJobs(unsigned Jobs) {
  auto C = std::make_unique<VaultCompiler>();
  C->setJobs(Jobs);
  C->addSource("t.vlt", std::string(mutexPrelude()) + DefectProgram);
  C->check();
  return C;
}

TEST(GuardedBorrow, DiagnosticsAreJobCountInvariant) {
  auto C1 = checkAtJobs(1);
  auto C4 = checkAtJobs(4);
  EXPECT_TRUE(C1->diags().hasErrors());
  EXPECT_EQ(C1->diags().render(), C4->diags().render());
}

TEST(GuardedBorrow, NewCodesRenderInJsonAndSarif) {
  auto C = checkAtJobs(1);
  ASSERT_TRUE(C->diags().has(DiagId::FlowGuardedBorrowLive))
      << C->diags().render();
  std::string J = renderDiagnosticsJson(C->diags());
  EXPECT_NE(J.find("\"id\": \"flow-guarded-borrow-live\""), std::string::npos);
  std::string S = renderDiagnosticsSarif(C->diags());
  EXPECT_NE(S.find("\"ruleId\": \"flow-guarded-borrow-live\""),
            std::string::npos);
  // Text rendering names the code too.
  EXPECT_NE(C->diags().render().find("[flow-guarded-borrow-live]"),
            std::string::npos);
}

} // namespace
