//===- PrototypeAgreementTests.cpp - prototype/definition agreement -------===//
//
// Regressions for the silent-supersede bug: a definition used to
// replace an earlier prototype of the same name without any check
// that the two signatures agree, so callers checked against the
// prototype's effect clause could be flow-checked against a function
// that actually does something else entirely. Pass 2 now verifies
// every prototype/definition (and prototype/prototype) pair and
// reports sema-proto-mismatch when they disagree.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace vault;
using namespace vault::test;

namespace {

TEST(PrototypeAgreement, AgreeingDefinitionAccepted) {
  auto C = check(R"(
void destroy(tracked(R) region r) [-R];
void main() {
  tracked region rgn = Region.create();
  destroy(rgn);
}
void destroy(tracked(R) region r) [-R] {
  Region.delete(r);
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(PrototypeAgreement, EffectClauseMismatchRejected) {
  // The prototype consumes the key; the definition keeps it held.
  // Silently superseding would change the meaning of every call site
  // checked so far, so this must be diagnosed.
  auto C = check(R"(
void destroy(tracked(R) region r) [-R];
void destroy(tracked(R) region r) [R] {
}
)",
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::SemaProtoMismatch);
}

TEST(PrototypeAgreement, ReturnTypeMismatchRejected) {
  auto C = check(R"(
int answer();
bool answer() {
  return true;
}
)",
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::SemaProtoMismatch);
}

TEST(PrototypeAgreement, ParamCountMismatchRejected) {
  auto C = check(R"(
void grow(int a);
void grow(int a, int b) {
}
)",
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::SemaProtoMismatch);
}

TEST(PrototypeAgreement, PrototypeAfterDefinitionChecked) {
  // Order must not matter: a disagreeing prototype that arrives after
  // the definition (e.g. from a second input file) is just as wrong.
  auto C = check(R"(
void destroy(tracked(R) region r) [-R] {
  Region.delete(r);
}
void destroy(tracked(R) region r) [R];
)",
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::SemaProtoMismatch);
}

TEST(PrototypeAgreement, MatchingPrototypePairAccepted) {
  // Repeated identical prototypes (common across //!include'd headers)
  // stay legal.
  auto C = check(R"(
void destroy(tracked(R) region r) [-R];
void destroy(tracked(R) region r) [-R];
void main() {
  tracked region rgn = Region.create();
  destroy(rgn);
}
void destroy(tracked(R) region r) [-R] {
  Region.delete(r);
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(PrototypeAgreement, CallSitesStillUseDefinition) {
  // The agreement check must not disturb the existing supersede
  // behavior: after a matching definition lands, callers flow-check
  // against it (here: consuming the region exactly once).
  auto C = check(R"(
void destroy(tracked(R) region r) [-R];
void destroy(tracked(R) region r) [-R] {
  Region.delete(r);
}
void main() {
  tracked region rgn = Region.create();
  destroy(rgn);
  destroy(rgn);
}
)",
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyNotHeld);
}

} // namespace
