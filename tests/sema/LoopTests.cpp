//===- LoopTests.cpp - Loop invariant inference (paper §3) ----------------===//

#include "TestUtil.h"

using namespace vault;
using namespace vault::test;

namespace {

TEST(Loops, KeyPreservingLoopAccepted) {
  auto C = check(R"(
void main(int n) {
  tracked(R) region rgn = Region.create();
  int i = 0;
  while (i < n) {
    R:point p = new(rgn) point {x=i;};
    p.x++;
    i++;
  }
  Region.delete(rgn);
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(Loops, AllocateAndFreePerIterationAccepted) {
  auto C = check(R"(
void main(int n) {
  int i = 0;
  while (i < n) {
    tracked(R) region rgn = Region.create();
    R:point p = new(rgn) point {x=i;};
    p.x++;
    Region.delete(rgn);
    i++;
  }
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(Loops, ConsumeInsideLoopRejected) {
  // Deleting a pre-loop region inside the body breaks the invariant:
  // the second iteration would double-delete.
  auto C = check(R"(
void main(int n) {
  tracked(R) region rgn = Region.create();
  int i = 0;
  while (i < n) {
    Region.delete(rgn);
    i++;
  }
}
)",
                 regionPrelude());
  EXPECT_TRUE(C->diags().hasErrors());
  EXPECT_TRUE(C->diags().has(DiagId::FlowJoinMismatch) ||
              C->diags().has(DiagId::FlowKeyNotHeld))
      << C->diags().render();
}

TEST(Loops, LeakPerIterationRejected) {
  auto C = check(R"(
void main(int n) {
  int i = 0;
  while (i < n) {
    tracked(R) region rgn = Region.create();
    i++;
  }
}
)",
                 regionPrelude());
  EXPECT_TRUE(C->diags().hasErrors()) << C->diags().render();
}

TEST(Loops, ReassignedTrackedVariableConverges) {
  // The loop rebinds r to a fresh region each iteration after deleting
  // the previous one; the invariant is inferred by canonicalization.
  auto C = check(R"(
void main(int n) {
  tracked region r = Region.create();
  int i = 0;
  while (i < n) {
    Region.delete(r);
    r = Region.create();
    i++;
  }
  Region.delete(r);
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(Loops, NestedLoopsAccepted) {
  auto C = check(R"(
void main(int n) {
  tracked(R) region rgn = Region.create();
  int i = 0;
  while (i < n) {
    int j = 0;
    while (j < i) {
      R:point p = new(rgn) point {x=j;};
      p.x++;
      j++;
    }
    i++;
  }
  Region.delete(rgn);
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(Loops, ReturnInsideLoop) {
  auto C = check(R"(
int find(int n) {
  tracked(R) region rgn = Region.create();
  int i = 0;
  while (i < n) {
    if (i * i == n) {
      Region.delete(rgn);
      return i;
    }
    i++;
  }
  Region.delete(rgn);
  return 0 - 1;
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(Loops, ReturnInsideLoopLeakRejected) {
  auto C = check(R"(
int find(int n) {
  tracked(R) region rgn = Region.create();
  int i = 0;
  while (i < n) {
    if (i * i == n) {
      return i; // BUG: leaks rgn.
    }
    i++;
  }
  Region.delete(rgn);
  return 0 - 1;
}
)",
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyLeaked);
}

TEST(Loops, DiagnosticsNotDuplicatedAcrossIterations) {
  // The fixpoint iteration must not multiply-report the same error.
  auto C = check(R"(
void main(int n) {
  tracked(R) region rgn = Region.create();
  Region.delete(rgn);
  int i = 0;
  while (i < n) {
    R:point p = new(rgn) point {x=1;}; // one error, reported once
    i++;
  }
}
)",
                 regionPrelude());
  EXPECT_TRUE(C->diags().hasErrors());
  EXPECT_LE(C->diags().count(DiagId::FlowKeyNotHeld), 2u)
      << C->diags().render();
}

TEST(Loops, WhileConditionAccessesChecked) {
  auto C = check(R"(
void main() {
  tracked(R) region rgn = Region.create();
  R:point p = new(rgn) point {x=3;};
  Region.delete(rgn);
  while (p.x > 0) { // error: guard key gone
    p.x--;
  }
}
)",
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowGuardNotHeld);
}

} // namespace
