//===- KeyedVariantTests.cpp - Paper §2.1 keyed variants ------------------===//

#include "TestUtil.h"

using namespace vault;
using namespace vault::test;

namespace {

const char *FilePrelude = R"(
type FILE;
tracked(@open) FILE fopen(string path);
void fclose(tracked(F) FILE) [-F];
variant opt_key<key K> [ 'NoKey | 'SomeKey {K} ];
void print(string s);
)";

TEST(KeyedVariants, FlagIdiomAccepted) {
  auto C = check(R"(
void foo(tracked(F) FILE f, bool close_early) [-F] {
  tracked opt_key<F> flag;
  if (close_early) {
    fclose(f);
    flag = 'NoKey;
  } else {
    flag = 'SomeKey{F};
  }
  switch (flag) {
    case 'NoKey:
      print("early");
    case 'SomeKey:
      fclose(f);
  }
}
)",
                 FilePrelude);
  EXPECT_ACCEPTED(C);
}

TEST(KeyedVariants, ConstructionConsumesTheKey) {
  // "Creating the value 'SomeKey{F} removes key F from the held-key
  // set" — so using f right after is an error.
  auto C = check(R"(
void foo(tracked(F) FILE f) [-F] {
  tracked opt_key<F> flag = 'SomeKey{F};
  fclose(f); // error: F attached to flag
  switch (flag) {
    case 'NoKey:
    case 'SomeKey:
      fclose(f);
  }
}
)",
                 FilePrelude);
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyNotHeld);
}

TEST(KeyedVariants, MatchingRestoresTheKey) {
  auto C = check(R"(
void foo(tracked(F) FILE f) [-F] {
  tracked opt_key<F> flag = 'SomeKey{F};
  switch (flag) {
    case 'NoKey:
      print("impossible but well-typed only if F handled");
    case 'SomeKey:
      fclose(f);
  }
}
)",
                 FilePrelude);
  // The NoKey arm exits with F neither held nor consumed while the
  // SomeKey arm consumed it — but both end with F absent, so this is
  // actually consistent... except 'NoKey never consumes F at all, and
  // the declared effect is [-F]. At the 'NoKey arm's exit F is not
  // held (it was packed into flag), which matches [-F].
  EXPECT_ACCEPTED(C);
}

TEST(KeyedVariants, ConstructingWithoutKeyRejected) {
  auto C = check(R"(
void foo(tracked(F) FILE f) [-F] {
  fclose(f);
  tracked opt_key<F> flag = 'SomeKey{F}; // F already consumed
  switch (flag) {
    case 'NoKey:
    case 'SomeKey:
      print("x");
  }
}
)",
                 FilePrelude);
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyNotHeld);
}

TEST(KeyedVariants, UntestedFlagLeaks) {
  auto C = check(R"(
void foo(tracked(F) FILE f) [-F] {
  tracked opt_key<F> flag = 'SomeKey{F};
  // BUG: flag never switched on.
}
)",
                 FilePrelude);
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyLeaked);
}

TEST(KeyedVariants, DoubleTestRejected) {
  // Switching twice would extract the key twice.
  auto C = check(R"(
void foo(tracked(F) FILE f) [-F] {
  tracked opt_key<F> flag = 'SomeKey{F};
  switch (flag) {
    case 'NoKey:
    case 'SomeKey:
      fclose(f);
  }
  switch (flag) {
    case 'NoKey:
    case 'SomeKey:
      fclose(f);
  }
}
)",
                 FilePrelude);
  EXPECT_TRUE(C->diags().hasErrors());
  // Either the second switch finds the flag's key gone, or the second
  // extraction duplicates F; both must be errors.
}

TEST(KeyedVariants, StateCarriedByAttachment) {
  // 'Ok carries K@named, 'Error carries K@raw; construction checks the
  // state.
  auto C = check(R"(
type sock;
variant status<key K> [ 'Ok {K@named} | 'Error(int) {K@raw} ];
tracked(@raw) sock socket(int d);
void close(tracked(S) sock) [-S];
void mk() {
  tracked(@raw) sock s = socket(0);
  tracked status<S2> r = 'Ok{S2}; // cannot name the socket's key S2...
  close(s);
}
)");
  // The explicit key name S2 is unknown in this scope.
  EXPECT_REJECTED_WITH(C, DiagId::SemaUnknownKey);
}

TEST(KeyedVariants, WrongStateAttachmentRejected) {
  auto C = check(R"(
type sock;
variant status<key K> [ 'Ok {K@named} | 'Error(int) {K@raw} ];
tracked(@raw) sock socket(int d);
void use(tracked status<K3> st);
void mk() {
  tracked(K) sock s = socket(0);
  use('Ok{K}); // error: K is in state raw, 'Ok requires named
}
)");
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyWrongState);
}

TEST(KeyedVariants, RightStateAttachmentAccepted) {
  auto C = check(R"(
type sock;
variant status<key K> [ 'Ok {K@named} | 'Error(int) {K@raw} ];
tracked(@raw) sock socket(int d);
void bind(tracked(S) sock) [S@raw->named];
void use(tracked status<K3> st);
void mk() {
  tracked(K) sock s = socket(0);
  bind(s);
  use('Ok{K});
}
)");
  EXPECT_ACCEPTED(C);
}

TEST(KeyedVariants, CannotInferVariantKeyWithoutContext) {
  auto C = check(R"(
void foo(tracked(F) FILE f) [-F] {
  fclose(f);
  x = 'NoKey; // no expected type, no explicit keys
}
)",
                 FilePrelude);
  EXPECT_TRUE(C->diags().hasErrors());
}

} // namespace
