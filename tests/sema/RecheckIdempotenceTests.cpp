//===- RecheckIdempotenceTests.cpp - check() must be re-runnable ----------===//
//
// Regressions for the non-idempotent check() bug: a second call used
// to re-run registerDecl against the persistent Globals/TypeContext,
// emitting spurious "redefinition" errors for every declaration.
// check() now resets all semantic state (and erases the previous
// run's diagnostics) so repeated checks are byte-identical.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace vault;
using namespace vault::test;

namespace {

TEST(RecheckIdempotence, CleanProgramStaysClean) {
  auto C = check(R"(
void main() {
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {x=1; y=2;};
  pt.x++;
  Region.delete(rgn);
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);
  EXPECT_TRUE(C->check()) << C->diags().render();
  EXPECT_ACCEPTED(C);
  EXPECT_TRUE(C->check()) << C->diags().render();
  EXPECT_ACCEPTED(C);
}

TEST(RecheckIdempotence, DiagnosticsIdenticalAcrossRuns) {
  auto C = check(R"(
void main(bool b) {
  tracked(R) region rgn = Region.create();
  if (b) {
    Region.delete(rgn);
  }
}
)",
                 regionPrelude());
  ASSERT_TRUE(C->diags().hasErrors());
  const std::string First = C->diags().render();
  const unsigned FirstErrors = C->diags().errorCount();
  EXPECT_FALSE(C->check());
  EXPECT_EQ(First, C->diags().render());
  EXPECT_EQ(FirstErrors, C->diags().errorCount());
  EXPECT_FALSE(C->check());
  EXPECT_EQ(First, C->diags().render());
  EXPECT_EQ(FirstErrors, C->diags().errorCount());
}

TEST(RecheckIdempotence, StatsAndTraceRebuiltNotAccumulated) {
  auto C = std::make_unique<VaultCompiler>();
  C->enableKeyTrace();
  C->addSource("t.vlt", std::string(regionPrelude()) + R"(
void main() {
  tracked(R) region rgn = Region.create();
  Region.delete(rgn);
}
)");
  ASSERT_TRUE(C->check());
  const auto Trace1 = C->keyTrace();
  const unsigned Checked1 = C->stats().FunctionsChecked;
  const unsigned Decls1 = C->stats().DeclsRegistered;
  ASSERT_TRUE(C->check());
  ASSERT_EQ(Trace1.size(), C->keyTrace().size());
  for (size_t I = 0; I < Trace1.size(); ++I) {
    EXPECT_EQ(Trace1[I].Function, C->keyTrace()[I].Function);
    EXPECT_EQ(Trace1[I].Held, C->keyTrace()[I].Held);
  }
  EXPECT_EQ(Checked1, C->stats().FunctionsChecked);
  EXPECT_EQ(Decls1, C->stats().DeclsRegistered);
}

TEST(RecheckIdempotence, MetricsRegistryResetsEveryCheck) {
  // Counters live in a persistent registry; a re-check must rebuild
  // them from zero, not accumulate across runs.
  auto C = check(R"(
void main(bool b) {
  tracked(R) region rgn = Region.create();
  if (b) {
    pt_use(rgn);
  }
  Region.delete(rgn);
}
void pt_use(tracked(R) region rgn) [R] {}
)",
                 regionPrelude());
  const uint64_t Keyset1 = C->metrics().value("flow.keyset_ops");
  const uint64_t Checked1 = C->metrics().value("check.functions_checked");
  const auto Counters1 = C->metrics().counters();
  ASSERT_GT(Keyset1, 0u);
  ASSERT_GT(Checked1, 0u);
  C->check();
  EXPECT_EQ(C->metrics().value("flow.keyset_ops"), Keyset1);
  EXPECT_EQ(C->metrics().value("check.functions_checked"), Checked1);
  // Every counter is rebuilt from zero (histograms carry wall times,
  // which legitimately vary run to run).
  EXPECT_EQ(C->metrics().counters(), Counters1)
      << "metrics accumulated across re-checks";
  // The classic Stats block resets with it.
  C->check();
  EXPECT_EQ(C->stats().PerFunction.size(), size_t(Checked1));
}

TEST(RecheckIdempotence, ParseDiagnosticsSurviveRecheck) {
  auto C = std::make_unique<VaultCompiler>();
  C->addSource("bad.vlt", "void main( {");
  const unsigned ParseDiags = static_cast<unsigned>(C->diags().size());
  ASSERT_GT(ParseDiags, 0u);
  EXPECT_FALSE(C->check());
  const std::string First = C->diags().render();
  EXPECT_FALSE(C->check());
  // Re-checking must neither duplicate nor drop the parse diagnostics.
  EXPECT_EQ(First, C->diags().render());
}

} // namespace
