//===- ExplainTests.cpp - --explain provenance chains ---------------------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <filesystem>

using namespace vault;
using namespace vault::test;

namespace {

const char *DanglingSource = R"(
void dangling() {
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {x=1; y=2;};
  Region.delete(rgn);
  pt.x++;
}
)";

std::unique_ptr<VaultCompiler> checkExplained(const std::string &Source,
                                              const std::string &Prelude) {
  auto C = std::make_unique<VaultCompiler>();
  C->enableExplain();
  C->addSource("test.vlt", Prelude + Source);
  C->check();
  return C;
}

/// Notes attached to the first diagnostic carrying \p Id.
std::vector<std::string> notesOf(VaultCompiler &C, DiagId Id) {
  std::vector<std::string> Out;
  for (const Diagnostic &D : C.diags().diagnostics())
    if (D.Id == Id) {
      for (const auto &N : D.Notes)
        Out.push_back(N.second);
      break;
    }
  return Out;
}

TEST(Explain, DanglingAccessGetsAtLeastTwoStepChain) {
  auto C = checkExplained(DanglingSource, regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowGuardNotHeld);

  std::vector<std::string> Notes = notesOf(*C, DiagId::FlowGuardNotHeld);
  ASSERT_GE(Notes.size(), 2u) << C->diags().render();
  EXPECT_NE(Notes[0].find("was created by the call to 'create'"),
            std::string::npos)
      << Notes[0];
  EXPECT_NE(Notes[1].find("was consumed by the call to 'delete'"),
            std::string::npos)
      << Notes[1];
}

TEST(Explain, OffByDefaultProducesNoProvenanceNotes) {
  auto C = check(DanglingSource, regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowGuardNotHeld);
  for (const std::string &N : notesOf(*C, DiagId::FlowGuardNotHeld))
    EXPECT_EQ(N.find("was created by"), std::string::npos) << N;
}

TEST(Explain, StateTransitionsAppearInTheChain) {
  auto C = checkExplained(R"(
void f(sockaddr addr, byte[] buf) {
  tracked(@raw) sock s = socket('UNIX, 'STREAM, 0);
  bind(s, addr);
  receive(s, buf);
  close(s);
}
)",
                          socketPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyWrongState);
  std::vector<std::string> Notes = notesOf(*C, DiagId::FlowKeyWrongState);
  ASSERT_GE(Notes.size(), 2u) << C->diags().render();
  bool SawTransition = false;
  for (const std::string &N : Notes)
    if (N.find("transitioned to state 'named' by the call to 'bind'") !=
        std::string::npos)
      SawTransition = true;
  EXPECT_TRUE(SawTransition) << C->diags().render();
}

TEST(Explain, LeakExplainsWhereTheKeyCameFrom) {
  auto C = checkExplained(R"(
void leaky() {
  tracked(R) region rgn = Region.create();
}
)",
                          regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyLeaked);
  std::vector<std::string> Notes = notesOf(*C, DiagId::FlowKeyLeaked);
  bool SawAcquire = false;
  for (const std::string &N : Notes)
    if (N.find("was created by the call to 'create'") != std::string::npos)
      SawAcquire = true;
  EXPECT_TRUE(SawAcquire) << C->diags().render();
}

TEST(Explain, GuardedBorrowViolationChainsTheHeldKeys) {
  // The guard/borrow domain: the chain must say where the borrow's
  // alias key came from (the split) so the user can see which borrow
  // pins the guard.
  auto C = checkExplained(R"(
void main() {
  tracked(M) mutex m = mutex_create();
  mutex_acquire(m);
  guarded<M> tracked(D) cell d = cell_new(m, 3);
  borrow b = d;
  mutex_release(m);
  endborrow b;
  free(d);
  mutex_destroy(m);
}
)",
                          mutexPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowGuardedBorrowLive);
  std::vector<std::string> Notes = notesOf(*C, DiagId::FlowGuardedBorrowLive);
  ASSERT_FALSE(Notes.empty()) << C->diags().render();
  bool SawSplit = false;
  for (const std::string &N : Notes)
    if (N.find("was split from key") != std::string::npos)
      SawSplit = true;
  EXPECT_TRUE(SawSplit) << C->diags().render();
}

TEST(Explain, RevokedBorrowChainNamesTheEndborrow) {
  auto C = checkExplained(R"(
void main() {
  tracked(M) mutex m = mutex_create();
  mutex_acquire(m);
  guarded<M> tracked(D) cell d = cell_new(m, 3);
  borrow b = d;
  endborrow b;
  b.val = 4;
  free(d);
  mutex_release(m);
  mutex_destroy(m);
}
)",
                          mutexPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyNotHeld);
  std::vector<std::string> Notes = notesOf(*C, DiagId::FlowKeyNotHeld);
  bool SawRevoke = false;
  for (const std::string &N : Notes)
    if (N.find("revoking borrow") != std::string::npos ||
        N.find("was split from key") != std::string::npos)
      SawRevoke = true;
  EXPECT_TRUE(SawRevoke) << C->diags().render();
}

TEST(Explain, OutputIsIdenticalAtAnyJobCount) {
  auto C1 = std::make_unique<VaultCompiler>();
  C1->enableExplain();
  C1->setJobs(1);
  C1->addSource("t.vlt", std::string(regionPrelude()) + DanglingSource);
  C1->check();
  auto C8 = std::make_unique<VaultCompiler>();
  C8->enableExplain();
  C8->setJobs(8);
  C8->addSource("t.vlt", std::string(regionPrelude()) + DanglingSource);
  C8->check();
  EXPECT_EQ(C1->diags().render(), C8->diags().render());
}

TEST(Explain, BypassesTheResultCache) {
  // Cached entries never contain provenance notes, so --explain must
  // not read or populate the cache.
  std::string Dir = ::testing::TempDir() + "/explain-cache";
  std::filesystem::remove_all(Dir);
  auto C = std::make_unique<VaultCompiler>();
  C->setCacheDir(Dir);
  C->enableExplain();
  C->addSource("t.vlt", std::string(regionPrelude()) + DanglingSource);
  C->check();
  EXPECT_FALSE(C->stats().CacheEnabled);
  EXPECT_FALSE(notesOf(*C, DiagId::FlowGuardNotHeld).empty());
  std::filesystem::remove_all(Dir);
}

TEST(Explain, RecheckReproducesTheSameChain) {
  auto C = checkExplained(DanglingSource, regionPrelude());
  std::string First = C->diags().render();
  C->check();
  EXPECT_EQ(C->diags().render(), First);
}

} // namespace
