//===- LockEventTests.cpp - Paper §4.2 locks and events -------------------===//

#include "TestUtil.h"

using namespace vault;
using namespace vault::test;

namespace {

TEST(Locks, BalancedAcquireReleaseAccepted) {
  auto C = check(R"(
void f(LOCK<Q> lock, Q:QUEUE queue) [IRQL @ (l <= DISPATCH_LEVEL)] {
  KIRQL<old> saved = KeAcquireSpinLock(lock);
  tracked popt item = Dequeue(queue);
  KeReleaseSpinLock(lock, saved);
  switch (item) {
    case 'NoIrp:
      return;
    case 'GotIrp(irp):
      IoCompleteRequest(irp, 0);
  }
}
)",
                 kernelPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(Locks, MissingReleaseRejected) {
  auto C = check(R"(
void f(LOCK<Q> lock) [IRQL @ (l <= DISPATCH_LEVEL)] {
  KIRQL<old> saved = KeAcquireSpinLock(lock);
}
)",
                 kernelPrelude());
  EXPECT_TRUE(C->diags().hasErrors());
  // Both the lock key and the raised IRQL are inconsistent at exit.
  EXPECT_TRUE(C->diags().has(DiagId::FlowKeyLeaked) ||
              C->diags().has(DiagId::FlowMissingAtExit))
      << C->diags().render();
}

TEST(Locks, DoubleAcquireRejected) {
  auto C = check(R"(
void f(LOCK<Q> lock) [IRQL @ (l <= DISPATCH_LEVEL)] {
  KIRQL<a> s1 = KeAcquireSpinLock(lock);
  KIRQL<b> s2 = KeAcquireSpinLock(lock);
  KeReleaseSpinLock(lock, s2);
  KeReleaseSpinLock(lock, s1);
}
)",
                 kernelPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyAlreadyHeld);
}

TEST(Locks, ReleaseWithoutAcquireRejected) {
  auto C = check(R"(
void f(LOCK<Q> lock, KIRQL<lvl> saved) [IRQL @ DISPATCH_LEVEL] {
  KeReleaseSpinLock(lock, saved);
}
)",
                 kernelPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyNotHeld);
}

TEST(Locks, GuardedDataRequiresTheLock) {
  auto C = check(R"(
void f(LOCK<Q> lock, Q:QUEUE queue) [IRQL @ (l <= DISPATCH_LEVEL)] {
  tracked popt item = Dequeue(queue); // error: Q not held
  switch (item) {
    case 'NoIrp:
      return;
    case 'GotIrp(irp):
      IoCompleteRequest(irp, 0);
  }
}
)",
                 kernelPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyNotHeld);
}

TEST(Locks, AccessAfterReleaseRejected) {
  auto C = check(R"(
void f(LOCK<Q> lock, Q:QUEUE queue) [IRQL @ (l <= DISPATCH_LEVEL)] {
  KIRQL<old> saved = KeAcquireSpinLock(lock);
  KeReleaseSpinLock(lock, saved);
  tracked popt item = Dequeue(queue); // error: lock released
  switch (item) {
    case 'NoIrp:
      return;
    case 'GotIrp(irp):
      IoCompleteRequest(irp, 0);
  }
}
)",
                 kernelPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyNotHeld);
}

TEST(Events, PassKeyThroughEventAccepted) {
  // §4.2: "our Vault description of events can be used to pass a key
  // from one thread to another".
  auto C = check(R"(
NTSTATUS f(DEVICE_OBJECT Dev, tracked(I) IRP Irp) [-I] {
  KEVENT<I> ev = KeInitializeEvent(Irp);
  KeSignalEvent(ev);   // give the key away
  KeWaitForEvent(ev);  // get it back
  IoCompleteRequest(Irp, 0);
  return 0;
}
)",
                 kernelPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(Events, SignalWithoutKeyRejected) {
  auto C = check(R"(
NTSTATUS f(DEVICE_OBJECT Dev, tracked(I) IRP Irp) [-I] {
  KEVENT<I> ev = KeInitializeEvent(Irp);
  IoCompleteRequest(Irp, 0);
  KeSignalEvent(ev); // error: I already consumed
  return 0;
}
)",
                 kernelPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyNotHeld);
}

TEST(Events, UseWhileSignaledRejected) {
  auto C = check(R"(
NTSTATUS f(DEVICE_OBJECT Dev, tracked(I) IRP Irp) [-I] {
  KEVENT<I> ev = KeInitializeEvent(Irp);
  KeSignalEvent(ev);
  IrpSetInformation(Irp, 1); // error: key with the other thread
  KeWaitForEvent(ev);
  IoCompleteRequest(Irp, 0);
  return 0;
}
)",
                 kernelPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyNotHeld);
}

TEST(Events, DoubleSignalRejected) {
  auto C = check(R"(
NTSTATUS f(DEVICE_OBJECT Dev, tracked(I) IRP Irp) [-I] {
  KEVENT<I> ev = KeInitializeEvent(Irp);
  KeSignalEvent(ev);
  KeSignalEvent(ev); // error: key already given away
  KeWaitForEvent(ev);
  IoCompleteRequest(Irp, 0);
  return 0;
}
)",
                 kernelPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyNotHeld);
}

TEST(Events, WaitWhileHoldingRejected) {
  // Waiting would duplicate the key.
  auto C = check(R"(
NTSTATUS f(DEVICE_OBJECT Dev, tracked(I) IRP Irp) [-I] {
  KEVENT<I> ev = KeInitializeEvent(Irp);
  KeWaitForEvent(ev); // error: I already held
  IoCompleteRequest(Irp, 0);
  return 0;
}
)",
                 kernelPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyAlreadyHeld);
}

} // namespace
