//===- AnonymityTests.cpp - Paper §2.4 / Figure 4 anonymization -----------===//

#include "TestUtil.h"

using namespace vault;
using namespace vault::test;

namespace {

const char *ListPrelude = R"(
variant reglist [ 'Nil | 'Cons(tracked region, tracked reglist) ];
)";

TEST(Anonymity, Fig4Rejected) {
  auto C = check(std::string(ListPrelude) + R"(
void main() {
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {x=4; y=2;};
  tracked reglist list = 'Cons(rgn, 'Nil);
  switch (list) {
    case 'Cons(rgn2, rest):
      pt.x++; // Bug! We need key R, but hold only a fresh key.
      Region.delete(rgn2);
      free(rest);
    case 'Nil:
      print("empty");
  }
}
)",
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowGuardNotHeld);
}

TEST(Anonymity, RecoveredRegionIsUsable) {
  // The fresh key from unpacking does let the program delete the
  // recovered region.
  auto C = check(std::string(ListPrelude) + R"(
void main() {
  tracked(R) region rgn = Region.create();
  tracked reglist list = 'Cons(rgn, 'Nil);
  switch (list) {
    case 'Cons(rgn2, rest):
      Region.delete(rgn2);
      free(rest);
    case 'Nil:
      print("empty");
  }
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(Anonymity, PackingConsumesTheKey) {
  auto C = check(std::string(ListPrelude) + R"(
void main() {
  tracked(R) region rgn = Region.create();
  tracked reglist list = 'Cons(rgn, 'Nil);
  Region.delete(rgn); // error: R packed into the list
  switch (list) {
    case 'Cons(rgn2, rest):
      Region.delete(rgn2);
      free(rest);
    case 'Nil:
      print("empty");
  }
}
)",
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyNotHeld);
}

TEST(Anonymity, UnswitchedListLeaks) {
  auto C = check(std::string(ListPrelude) + R"(
void main() {
  tracked(R) region rgn = Region.create();
  tracked reglist list = 'Cons(rgn, 'Nil);
}
)",
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyLeaked);
}

TEST(Anonymity, CorrelatedPairsFixAccepted) {
  // §2.4's fix: a list of pairs keeps the key/guard correlation.
  auto C = check(R"(
type regptpair = (tracked(R) region, R:point);
variant regptlist [ 'Nil | 'Cons(tracked regptpair, tracked regptlist) ];
void main() {
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {x=4; y=2;};
  tracked regptlist list = 'Cons((rgn, pt), 'Nil);
  switch (list) {
    case 'Cons(pair, rest):
      pair[1].x++;
      Region.delete(pair[0]);
      free(pair);
      free(rest);
    case 'Nil:
      print("empty");
  }
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(Anonymity, PairInternalCorrelationEnforced) {
  // Deleting the pair's region kills access to the pair's point.
  auto C = check(R"(
type regptpair = (tracked(R) region, R:point);
variant regptlist [ 'Nil | 'Cons(tracked regptpair, tracked regptlist) ];
void main() {
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {x=4; y=2;};
  tracked regptlist list = 'Cons((rgn, pt), 'Nil);
  switch (list) {
    case 'Cons(pair, rest):
      Region.delete(pair[0]);
      pair[1].x++; // error: the pair's region is gone
      free(pair);
      free(rest);
    case 'Nil:
      print("empty");
  }
}
)",
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowGuardNotHeld);
}

TEST(Anonymity, AnonymousParameterUnpacksOnEntry) {
  // §3.3: "function parameters are unpacked on entry".
  auto C = check(R"(
void consume(tracked region r) [] {
  Region.delete(r);
}
void main() {
  tracked(R) region rgn = Region.create();
  consume(rgn);
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(Anonymity, AnonymousParameterKeptLeaks) {
  auto C = check(R"(
void consume(tracked region r) [] {
  // BUG: r's unpacked key is not consumed and not in the post set.
}
)",
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyLeaked);
}

TEST(Anonymity, CallerLosesKeyWhenPassingAnonymously) {
  auto C = check(R"(
void consume(tracked region r) [] {
  Region.delete(r);
}
void main() {
  tracked(R) region rgn = Region.create();
  consume(rgn);
  Region.delete(rgn); // error: key given away
}
)",
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyNotHeld);
}

} // namespace
