//===- KeyTraceTests.cpp - Held-key-set tracing ---------------------------===//

#include "TestUtil.h"

using namespace vault;
using namespace vault::test;

namespace {

std::vector<KeyTraceEntry> traceOf(const std::string &Src,
                                   const std::string &Prelude) {
  VaultCompiler C;
  C.enableKeyTrace();
  C.addSource("trace.vlt", Prelude + Src);
  C.check();
  return C.keyTrace();
}

TEST(KeyTrace, RegionLifetimeVisible) {
  auto Trace = traceOf(R"(
void main() {
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {x=1; y=2;};
  pt.x++;
  Region.delete(rgn);
}
)",
                       regionPrelude());
  ASSERT_GE(Trace.size(), 4u);
  // The key is held through the body...
  EXPECT_NE(Trace[0].Held.find("R#"), std::string::npos) << Trace[0].Held;
  EXPECT_NE(Trace[1].Held.find("R#"), std::string::npos);
  EXPECT_NE(Trace[2].Held.find("R#"), std::string::npos);
  // ...and gone after Region.delete.
  EXPECT_EQ(Trace.back().Held, "{}");
  EXPECT_EQ(Trace[0].Function, "main");
}

TEST(KeyTrace, StateTransitionsVisible) {
  auto Trace = traceOf(R"(
void main(sockaddr addr) {
  tracked(@raw) sock s = socket('UNIX, 'STREAM, 0);
  bind(s, addr);
  listen(s, 5);
  close(s);
}
)",
                       socketPrelude());
  ASSERT_EQ(Trace.size(), 4u);
  EXPECT_NE(Trace[0].Held.find("@raw"), std::string::npos) << Trace[0].Held;
  EXPECT_NE(Trace[1].Held.find("@named"), std::string::npos);
  EXPECT_NE(Trace[2].Held.find("@listening"), std::string::npos);
  EXPECT_EQ(Trace[3].Held, "{}");
}

TEST(KeyTrace, BranchTraceCoversBothArms) {
  auto Trace = traceOf(R"(
void main(bool b) {
  tracked(R) region rgn = Region.create();
  if (b) {
    R:point p = new(rgn) point {x=1;};
    p.x++;
  } else {
    print("skip");
  }
  Region.delete(rgn);
}
)",
                       regionPrelude());
  // Entries from both arms plus the straight-line statements.
  ASSERT_GE(Trace.size(), 5u);
  EXPECT_EQ(Trace.back().Held, "{}");
}

TEST(KeyTrace, LoopTraceOnlyFromTheLoudPass) {
  // The fixpoint iterations are suppressed: each body statement
  // appears a bounded number of times, not MaxLoopIterations times.
  auto Trace = traceOf(R"(
void main(int n) {
  tracked(R) region rgn = Region.create();
  int i = 0;
  while (i < n) {
    i++;
  }
  Region.delete(rgn);
}
)",
                       regionPrelude());
  unsigned BodyEntries = 0;
  for (const KeyTraceEntry &T : Trace)
    if (T.Held.find("R#") != std::string::npos)
      ++BodyEntries;
  EXPECT_LT(Trace.size(), 12u) << "quiet iterations must not trace";
  (void)BodyEntries;
}

TEST(KeyTrace, DisabledByDefault) {
  VaultCompiler C;
  C.addSource("t.vlt", "void main() {}");
  C.check();
  EXPECT_TRUE(C.keyTrace().empty());
}

} // namespace
