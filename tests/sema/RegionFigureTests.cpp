//===- RegionFigureTests.cpp - Paper §2.2 / Figures 1-2 -------------------===//

#include "TestUtil.h"

using namespace vault;
using namespace vault::test;

namespace {

TEST(RegionFigures, OkayAccepted) {
  auto C = check(R"(
void okay() {
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {x=1; y=2;};
  pt.x++;
  Region.delete(rgn);
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(RegionFigures, DanglingRejected) {
  auto C = check(R"(
void dangling() {
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {x=1; y=2;};
  Region.delete(rgn);
  pt.x++;
}
)",
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowGuardNotHeld);
}

TEST(RegionFigures, LeakyRejected) {
  auto C = check(R"(
void leaky() {
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {x=1; y=2;};
  pt.x++;
}
)",
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyLeaked);
}

TEST(RegionFigures, DoubleDeleteRejected) {
  auto C = check(R"(
void dd() {
  tracked(R) region rgn = Region.create();
  Region.delete(rgn);
  Region.delete(rgn);
}
)",
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyNotHeld);
}

TEST(RegionFigures, AliasesShareTheKey) {
  // §3.1: "calling Region.delete on either rgn1 or rgn2 deletes the
  // key, which prevents the region from being referenced under either
  // name".
  auto C = check(R"(
void aliases() {
  tracked(R) region rgn1 = Region.create();
  tracked region rgn2 = rgn1;
  Region.delete(rgn2);
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);

  auto C2 = check(R"(
void aliases() {
  tracked(R) region rgn1 = Region.create();
  tracked region rgn2 = rgn1;
  Region.delete(rgn2);
  Region.delete(rgn1); // same key: double delete
}
)",
                  regionPrelude());
  EXPECT_REJECTED_WITH(C2, DiagId::FlowKeyNotHeld);
}

TEST(RegionFigures, AllocationFromDeletedRegionRejected) {
  auto C = check(R"(
void f() {
  tracked(R) region rgn = Region.create();
  Region.delete(rgn);
  R:point pt = new(rgn) point {x=1;};
}
)",
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyNotHeld);
}

TEST(RegionFigures, TwoRegionsAreDistinct) {
  auto C = check(R"(
void two() {
  tracked(A) region ra = Region.create();
  tracked(B) region rb = Region.create();
  A:point pa = new(ra) point {x=1;};
  B:point pb = new(rb) point {x=2;};
  Region.delete(ra);
  pb.x++;          // still fine: key B held
  Region.delete(rb);
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);

  auto C2 = check(R"(
void two() {
  tracked(A) region ra = Region.create();
  tracked(B) region rb = Region.create();
  A:point pa = new(ra) point {x=1;};
  Region.delete(ra);
  pa.x++;          // dangling: key A gone
  Region.delete(rb);
}
)",
                  regionPrelude());
  EXPECT_REJECTED_WITH(C2, DiagId::FlowGuardNotHeld);
}

TEST(RegionFigures, GuardedDataFlowsBetweenFunctions) {
  // The paper's foo(tracked(F) FILE f, guarded_int<F> gi) pattern:
  // a guarded value and its guard key passed together.
  auto C = check(R"(
type guarded_pt<key K> = K:point;
void bump(tracked(F) region r, guarded_pt<F> p) [F] {
  p.x++;
}
void main() {
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {x=1; y=2;};
  bump(rgn, pt);
  Region.delete(rgn);
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(RegionFigures, GuardedParamWithoutKeyRejected) {
  // Passing the guarded value after deleting its region.
  auto C = check(R"(
type guarded_pt<key K> = K:point;
void bump(tracked(F) region r, guarded_pt<F> p) [F] {
  p.x++;
}
void main() {
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {x=1; y=2;};
  Region.delete(rgn);
  bump(rgn, pt);
}
)",
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyNotHeld);
}

TEST(RegionFigures, EffectfulCalleeAccountedInCaller) {
  // A helper that consumes the region; the caller must not use it
  // afterwards.
  auto C = check(R"(
void finish(tracked(K) region r) [-K] {
  Region.delete(r);
}
void main() {
  tracked(R) region rgn = Region.create();
  finish(rgn);
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);

  auto C2 = check(R"(
void finish(tracked(K) region r) [-K] {
  Region.delete(r);
}
void main() {
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {x=1;};
  finish(rgn);
  pt.x++;
}
)",
                  regionPrelude());
  EXPECT_REJECTED_WITH(C2, DiagId::FlowGuardNotHeld);
}

TEST(RegionFigures, CalleeBodyCheckedAgainstItsEffect) {
  // A callee that promises to consume but does not is itself rejected.
  auto C = check(R"(
void finish(tracked(K) region r) [-K] {
  // BUG: forgot Region.delete(r).
}
)",
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyLeaked);
}

TEST(RegionFigures, NoEffectMeansUnchanged) {
  // §2.2: "because this function has no explicit effect clause, it
  // promises that the pre and post key set will be the same".
  auto C = check(R"(
void peek(tracked(K) region r) {
  Region.delete(r); // violates the implicit identity effect
}
)",
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowMissingAtExit);
}

TEST(RegionFigures, FreshKeyReturnedToCaller) {
  auto C = check(R"(
tracked(N) region make() [new N] {
  tracked(R) region rgn = Region.create();
  return rgn;
}
void main() {
  tracked(M) region r = make();
  Region.delete(r);
}
)",
                 regionPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(RegionFigures, DiscardedFreshKeyLeaks) {
  auto C = check(R"(
void main() {
  Region.create(); // fresh region discarded
}
)",
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyLeaked);
}

} // namespace
