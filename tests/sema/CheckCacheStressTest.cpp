//===- CheckCacheStressTest.cpp - concurrent writers, one cache dir -------===//
//
// The shared-cache-dir contract: any number of processes (modeled here
// as threads, which share nothing but the directory) may check against
// the same --cache-dir concurrently. Entries are content-addressed and
// written via atomic rename, the index is advisory, and a concurrently
// rewritten index degrades to a re-check — so no interleaving may ever
// crash a writer, tear an entry into a wrong replay, or change a
// run's diagnostics from what an uncached run prints.
//
//===----------------------------------------------------------------------===//

#include "sema/CheckCache.h"
#include "sema/Checker.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace vault;

namespace {

const char *VariantA = "key L;\n"
                       "void acquire() [ +L ];\n"
                       "void release() [ -L ];\n"
                       "void worker() { acquire(); release(); }\n"
                       "void main() { worker(); }\n";

// Same unit, one edited function: worker() now leaks L, so the two
// variants produce different (stable) diagnostics and keep evicting
// each other's fingerprints from the shared index. Note the leak
// diagnostic's note points at the `key L;` declaration — outside
// worker()'s own chunk — which makes the erroring worker() deliberately
// uncacheable (the cache refuses any entry it could not replay
// verbatim), so every B run re-checks exactly that one function.
const char *VariantB = "key L;\n"
                       "void acquire() [ +L ];\n"
                       "void release() [ -L ];\n"
                       "void worker() { acquire(); }\n"
                       "void main() { worker(); }\n";

// A clean edit of VariantA (fully cacheable, distinct fingerprints).
const char *VariantC = "key L;\n"
                       "void acquire() [ +L ];\n"
                       "void release() [ -L ];\n"
                       "void worker() { acquire(); release(); }\n"
                       "void main() { int twice = 2; worker(); }\n";

std::string uncachedRender(const char *Text) {
  VaultCompiler C;
  C.addSource("stress.vlt", Text);
  C.check();
  return C.diags().render();
}

std::string freshDir(const std::string &Tag) {
  std::string Dir = ::testing::TempDir() + "vault-cache-stress-" + Tag;
  std::filesystem::remove_all(Dir);
  return Dir;
}

TEST(CheckCacheStress, TwoWritersOneDirNeverTearOrDiverge) {
  std::string Dir = freshDir("two-writers");
  std::string RefA = uncachedRender(VariantA);
  std::string RefB = uncachedRender(VariantB);
  ASSERT_NE(RefA, RefB);

  std::mutex Mu;
  std::vector<std::string> Failures;
  auto Writer = [&](unsigned Tid) {
    for (unsigned I = 0; I != 40; ++I) {
      bool UseA = ((I + Tid) % 2) == 0;
      VaultCompiler C;
      C.setCacheDir(Dir);
      C.addSource("stress.vlt", UseA ? VariantA : VariantB);
      C.check();
      std::string Got = C.diags().render();
      const std::string &Want = UseA ? RefA : RefB;
      if (Got != Want) {
        std::lock_guard<std::mutex> Lock(Mu);
        Failures.push_back("thread " + std::to_string(Tid) + " iter " +
                           std::to_string(I) + (UseA ? " (A)" : " (B)") +
                           ":\n--- want ---\n" + Want + "--- got ---\n" + Got);
      }
    }
  };
  std::thread T1(Writer, 0), T2(Writer, 1);
  T1.join();
  T2.join();
  EXPECT_TRUE(Failures.empty())
      << Failures.size() << " divergent run(s); first:\n" << Failures.front();

  // The directory settled into a usable state: a warm run of whichever
  // variant we pick still replays or re-checks into the right bytes.
  VaultCompiler C;
  C.setCacheDir(Dir);
  C.addSource("stress.vlt", VariantA);
  C.check();
  EXPECT_EQ(C.diags().render(), RefA);
  std::filesystem::remove_all(Dir);
}

TEST(CheckCacheStress, FinalizePreservesOtherUnitsRows) {
  // Regression pin for the finalize merge: unit B's finalize used to
  // rewrite index.tsv from its stale in-memory copy, dropping rows a
  // concurrent (or merely later) unit-A run had added — demoting A's
  // warm runs to full re-checks and, worse, letting the pruner delete
  // A's live entries.
  std::string Dir = freshDir("finalize-merge");

  auto Run = [&](const char *Name, const char *Text) {
    auto C = std::make_unique<VaultCompiler>();
    C->setCacheDir(Dir);
    C->addSource(Name, Text);
    C->check();
    return C;
  };

  Run("unit_a.vlt", VariantA);
  Run("unit_b.vlt", VariantB); // Different unit, same directory.

  auto WarmA = Run("unit_a.vlt", VariantA);
  ASSERT_TRUE(WarmA->stats().CacheEnabled);
  EXPECT_EQ(WarmA->stats().FlowChecksRun, 0u)
      << "unit_b's finalize dropped unit_a's index rows";
  auto WarmB = Run("unit_b.vlt", VariantB);
  // worker() is uncacheable (its diagnostic's note crosses chunks), so
  // a warm B run re-checks exactly it; main() replays.
  EXPECT_EQ(WarmB->stats().FlowChecksRun, 1u);
  EXPECT_EQ(WarmB->stats().CacheHits, 1u);
  std::filesystem::remove_all(Dir);
}

TEST(CheckCacheStress, ConcurrentDistinctUnitsStayWarm) {
  // Two units hammering one directory in parallel; afterwards both
  // must be replayable without a single flow check.
  std::string Dir = freshDir("distinct-units");
  auto Writer = [&](const char *Name, const char *Text) {
    for (unsigned I = 0; I != 25; ++I) {
      VaultCompiler C;
      C.setCacheDir(Dir);
      C.addSource(Name, Text);
      C.check();
    }
  };
  std::thread T1(Writer, "left.vlt", VariantA);
  std::thread T2(Writer, "right.vlt", VariantC);
  T1.join();
  T2.join();

  for (auto [Name, Text] : {std::pair{"left.vlt", VariantA},
                            std::pair{"right.vlt", VariantC}}) {
    VaultCompiler C;
    C.setCacheDir(Dir);
    C.addSource(Name, Text);
    C.check();
    EXPECT_EQ(C.stats().FlowChecksRun, 0u) << Name;
  }
  std::filesystem::remove_all(Dir);
}

TEST(CheckCacheStress, MemoryStoreSharedByConcurrentCompilers) {
  // The daemon-side equivalent: many compilers, one CheckMemoryStore.
  CheckMemoryStore Store;
  std::string RefA = uncachedRender(VariantA);
  std::string RefB = uncachedRender(VariantB);
  std::mutex Mu;
  std::vector<std::string> Failures;
  auto Worker = [&](unsigned Tid) {
    for (unsigned I = 0; I != 30; ++I) {
      bool UseA = ((I + Tid) % 2) == 0;
      VaultCompiler C;
      C.setMemoryCache(&Store);
      C.addSource("stress.vlt", UseA ? VariantA : VariantB);
      C.check();
      if (C.diags().render() != (UseA ? RefA : RefB)) {
        std::lock_guard<std::mutex> Lock(Mu);
        Failures.push_back("thread " + std::to_string(Tid) + " iter " +
                           std::to_string(I));
      }
    }
  };
  std::thread T1(Worker, 0), T2(Worker, 1), T3(Worker, 2);
  T1.join();
  T2.join();
  T3.join();
  EXPECT_TRUE(Failures.empty()) << Failures.size() << " divergent run(s)";
  // Each finalize replaces the single unit's rows and prunes what no
  // row references, so the store settles at the last writer's live
  // entries — never empty, never unbounded.
  EXPECT_GE(Store.entryCount(), 1u);
  EXPECT_LE(Store.entryCount(), 4u);
}

} // namespace
