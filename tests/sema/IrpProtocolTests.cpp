//===- IrpProtocolTests.cpp - Paper §4.1 IRP ownership --------------------===//

#include "TestUtil.h"

using namespace vault;
using namespace vault::test;

namespace {

TEST(IrpProtocol, CompleteOnEveryPathAccepted) {
  auto C = check(R"(
DSTATUS<I> Read(DEVICE_OBJECT Dev, tracked(I) IRP Irp, bool ready)
    [-I, IRQL @ (level <= DISPATCH_LEVEL)] {
  if (!ready) {
    return IoCompleteRequest(Irp, -3);
  }
  return IoCallDriver(Dev, Irp);
}
)",
                 kernelPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(IrpProtocol, PendedAndQueuedAccepted) {
  auto C = check(R"(
DSTATUS<I> Read(DEVICE_OBJECT Dev, tracked(I) IRP Irp,
                LOCK<Q> qlock, Q:QUEUE queue)
    [-I, IRQL @ (level <= DISPATCH_LEVEL)] {
  DSTATUS<I> st = IoMarkIrpPending(Irp);
  KIRQL<old> saved = KeAcquireSpinLock(qlock);
  Enqueue(queue, Irp);
  KeReleaseSpinLock(qlock, saved);
  return st;
}
)",
                 kernelPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(IrpProtocol, PendedButNotQueuedLeaks) {
  auto C = check(R"(
DSTATUS<I> Read(DEVICE_OBJECT Dev, tracked(I) IRP Irp)
    [-I, IRQL @ (level <= DISPATCH_LEVEL)] {
  return IoMarkIrpPending(Irp); // BUG: IRP lost forever.
}
)",
                 kernelPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyLeaked);
}

TEST(IrpProtocol, DoubleCompleteRejected) {
  auto C = check(R"(
DSTATUS<I> Read(DEVICE_OBJECT Dev, tracked(I) IRP Irp)
    [-I, IRQL @ (level <= DISPATCH_LEVEL)] {
  IoCompleteRequest(Irp, 0);
  return IoCompleteRequest(Irp, 0); // BUG
}
)",
                 kernelPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyNotHeld);
}

TEST(IrpProtocol, CompleteThenForwardRejected) {
  auto C = check(R"(
DSTATUS<I> Read(DEVICE_OBJECT Dev, tracked(I) IRP Irp)
    [-I, IRQL @ (level <= DISPATCH_LEVEL)] {
  IoCompleteRequest(Irp, 0);
  return IoCallDriver(Dev, Irp); // BUG: IRP already completed
}
)",
                 kernelPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyNotHeld);
}

TEST(IrpProtocol, AccessAfterCompleteRejected) {
  auto C = check(R"(
DSTATUS<I> Read(DEVICE_OBJECT Dev, tracked(I) IRP Irp)
    [-I, IRQL @ (level <= DISPATCH_LEVEL)] {
  DSTATUS<I> st = IoCompleteRequest(Irp, 0);
  IrpSetInformation(Irp, 512); // BUG: no longer owns the IRP
  return st;
}
)",
                 kernelPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyNotHeld);
}

TEST(IrpProtocol, AccessBeforeCompleteAccepted) {
  auto C = check(R"(
DSTATUS<I> Read(DEVICE_OBJECT Dev, tracked(I) IRP Irp)
    [-I, IRQL @ (level <= DISPATCH_LEVEL)] {
  IrpSetInformation(Irp, IrpLength(Irp));
  return IoCompleteRequest(Irp, 0);
}
)",
                 kernelPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(IrpProtocol, DequeuedIrpMustBeResolved) {
  auto C = check(R"(
void drain(LOCK<Q> qlock, Q:QUEUE queue)
    [IRQL @ (lvl <= DISPATCH_LEVEL)] {
  KIRQL<old> saved = KeAcquireSpinLock(qlock);
  tracked popt item = Dequeue(queue);
  KeReleaseSpinLock(qlock, saved);
  switch (item) {
    case 'NoIrp:
      return;
    case 'GotIrp(irp):
      return; // BUG: dequeued IRP dropped.
  }
}
)",
                 kernelPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyLeaked);
}

TEST(IrpProtocol, DequeuedIrpCompletedAccepted) {
  auto C = check(R"(
void drain(LOCK<Q> qlock, Q:QUEUE queue)
    [IRQL @ (lvl <= DISPATCH_LEVEL)] {
  KIRQL<old> saved = KeAcquireSpinLock(qlock);
  tracked popt item = Dequeue(queue);
  KeReleaseSpinLock(qlock, saved);
  switch (item) {
    case 'NoIrp:
      return;
    case 'GotIrp(irp):
      IoCompleteRequest(irp, 0);
  }
}
)",
                 kernelPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(IrpProtocol, TwoIrpsResolvedIndependently) {
  auto C = check(R"(
DSTATUS<B> Pair(DEVICE_OBJECT Dev, tracked(A) IRP first,
                tracked(B) IRP second) [-A, -B] {
  IoCompleteRequest(first, 0);
  return IoCompleteRequest(second, 0);
}
)",
                 kernelPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(IrpProtocol, CrossedIrpCompletionCaught) {
  auto C = check(R"(
DSTATUS<B> Pair(DEVICE_OBJECT Dev, tracked(A) IRP first,
                tracked(B) IRP second) [-A, -B] {
  IoCompleteRequest(first, 0);
  IoCompleteRequest(first, 0); // BUG: first twice, second never
  return IoCompleteRequest(second, 0);
}
)",
                 kernelPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyNotHeld);
}

TEST(IrpProtocol, AliasedIrpArgumentsRejected) {
  // Passing the same IRP for two distinct keys would alias what the
  // signature declares distinct.
  auto C = check(R"(
DSTATUS<B> Pair(DEVICE_OBJECT Dev, tracked(A) IRP first,
                tracked(B) IRP second) [-A, -B] {
  IoCompleteRequest(first, 0);
  return IoCompleteRequest(second, 0);
}
DSTATUS<I> caller(DEVICE_OBJECT Dev, tracked(I) IRP irp) [-I] {
  return Pair(Dev, irp, irp);
}
)",
                 kernelPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::SemaTypeMismatch);
}

} // namespace
