//===- ElaboratorTests.cpp - Signature elaboration internals --------------===//

#include "TestUtil.h"

using namespace vault;
using namespace vault::test;

namespace {

/// Checks a prelude and returns the compiler for signature inspection.
std::unique_ptr<VaultCompiler> compile(const std::string &Src) {
  auto C = std::make_unique<VaultCompiler>();
  C->addSource("elab.vlt", Src);
  C->check();
  return C;
}

TEST(Elaborator, TrackedParamBindsSignatureKey) {
  auto C = compile("type FILE; void fclose(tracked(F) FILE f) [-F];");
  const FuncSig *Sig = C->signatureOf("fclose");
  ASSERT_NE(Sig, nullptr);
  ASSERT_EQ(Sig->SigKeys.size(), 1u);
  EXPECT_EQ(C->types().keys().name(Sig->SigKeys[0]), "F");
  EXPECT_TRUE(Sig->FreshKeys.empty());
  ASSERT_EQ(Sig->Effects.size(), 1u);
  EXPECT_EQ(Sig->Effects[0].M, EffectItem::Mode::Consume);
  EXPECT_EQ(Sig->Effects[0].Key, Sig->SigKeys[0]);
}

TEST(Elaborator, ImplicitKeepEffectForUnmentionedTrackedParam) {
  // §2.2: no effect clause promises an unchanged key set.
  auto C = compile("type FILE; void peek(tracked(F) FILE f);");
  const FuncSig *Sig = C->signatureOf("peek");
  ASSERT_NE(Sig, nullptr);
  ASSERT_EQ(Sig->Effects.size(), 1u);
  EXPECT_EQ(Sig->Effects[0].M, EffectItem::Mode::Keep);
  ASSERT_TRUE(Sig->Effects[0].Post.has_value());
  EXPECT_EQ(Sig->Effects[0].Pre, *Sig->Effects[0].Post) << "state unchanged";
}

TEST(Elaborator, GuardOnlyKeyGetsNoImplicitEffect) {
  auto C = compile("type FILE;"
                   "type gi<key K> = K:int;"
                   "void peek(tracked(F) FILE f, gi<F> x) [F];");
  const FuncSig *Sig = C->signatureOf("peek");
  ASSERT_NE(Sig, nullptr);
  EXPECT_EQ(Sig->Effects.size(), 1u) << "only the declared [F]";
}

TEST(Elaborator, FreshKeyFromNewEffect) {
  auto C = compile("type region;"
                   "tracked(R) region create() [new R];");
  const FuncSig *Sig = C->signatureOf("create");
  ASSERT_NE(Sig, nullptr);
  ASSERT_EQ(Sig->FreshKeys.size(), 1u);
  ASSERT_EQ(Sig->Effects.size(), 1u);
  EXPECT_EQ(Sig->Effects[0].M, EffectItem::Mode::Fresh);
  const auto *Ret = dyn_cast<TrackedType>(Sig->RetType);
  ASSERT_NE(Ret, nullptr);
  EXPECT_EQ(Ret->key(), Sig->FreshKeys[0]) << "return names the fresh key";
}

TEST(Elaborator, ImplicitFreshKeyFromTrackedReturn) {
  // `tracked(@raw) sock socket(...)` without a `new` effect.
  auto C = compile("type sock; tracked(@raw) sock mk(int d);");
  const FuncSig *Sig = C->signatureOf("mk");
  ASSERT_NE(Sig, nullptr);
  ASSERT_EQ(Sig->FreshKeys.size(), 1u);
  ASSERT_EQ(Sig->Effects.size(), 1u);
  EXPECT_EQ(Sig->Effects[0].M, EffectItem::Mode::Fresh);
  ASSERT_TRUE(Sig->Effects[0].Post.has_value());
  EXPECT_EQ(Sig->Effects[0].Post->nameOrBound(), "raw");
}

TEST(Elaborator, AnonymousTrackedReturnHasNoEffect) {
  auto C = compile("type region; tracked region mk();");
  const FuncSig *Sig = C->signatureOf("mk");
  ASSERT_NE(Sig, nullptr);
  EXPECT_TRUE(Sig->Effects.empty()) << "the key travels inside the value";
  EXPECT_EQ(Sig->RetType->kind(), TyKind::AnonTracked);
}

TEST(Elaborator, BoundedStateVariableRegistered) {
  auto C = compile("stateset L = [ a < b < c ];"
                   "key G @ L;"
                   "void f() [G @ (lvl <= b)];");
  const FuncSig *Sig = C->signatureOf("f");
  ASSERT_NE(Sig, nullptr);
  EXPECT_EQ(Sig->NumStateVars, 1u);
  ASSERT_EQ(Sig->StateVarNames.size(), 1u);
  EXPECT_EQ(Sig->StateVarNames[0].first, "lvl");
  ASSERT_EQ(Sig->Effects.size(), 1u);
  EXPECT_TRUE(Sig->Effects[0].Pre.isVar());
  EXPECT_EQ(Sig->Effects[0].Pre.nameOrBound(), "b");
}

TEST(Elaborator, StateVarIdsGloballyUnique) {
  // Two signatures must not share state-variable ids (a collision lets
  // a caller's bound spuriously satisfy a callee's — the same-variable
  // rule).
  auto C = compile("stateset L = [ a < b ];"
                   "key G @ L;"
                   "void f() [G @ (x <= a)];"
                   "void g() [G @ (y <= b)];");
  const FuncSig *F = C->signatureOf("f");
  const FuncSig *G = C->signatureOf("g");
  ASSERT_NE(F, nullptr);
  ASSERT_NE(G, nullptr);
  ASSERT_EQ(F->StateVarNames.size(), 1u);
  ASSERT_EQ(G->StateVarNames.size(), 1u);
  EXPECT_NE(F->StateVarNames[0].second.varId(),
            G->StateVarNames[0].second.varId());
}

TEST(Elaborator, GlobalKeysAreShared) {
  auto C = compile("stateset L = [ a < b ];"
                   "key G @ L;"
                   "void f() [G @ a];"
                   "void g() [G @ a];");
  const FuncSig *F = C->signatureOf("f");
  const FuncSig *G = C->signatureOf("g");
  ASSERT_EQ(F->Effects.size(), 1u);
  ASSERT_EQ(G->Effects.size(), 1u);
  EXPECT_EQ(F->Effects[0].Key, G->Effects[0].Key)
      << "both reference the one global key";
  EXPECT_TRUE(F->SigKeys.empty());
}

TEST(Elaborator, AliasExpansion) {
  auto C = compile("type pairish<type T> = T;"
                   "void f(pairish<int> x) { x + 1; }");
  EXPECT_FALSE(C->diags().hasErrors()) << C->diags().render();
}

TEST(Elaborator, CyclicAliasDiagnosed) {
  auto C = compile("type a = b; type b = a; void f(a x) {}");
  EXPECT_TRUE(C->diags().hasErrors());
}

TEST(Elaborator, SignatureKeyAliasingWithinParams) {
  // Two params naming the same key declare aliases; callers must pass
  // the same resource.
  auto C = compile(R"(
type FILE;
tracked(@open) FILE fopen(string p);
void fclose(tracked(F) FILE) [-F];
void both(tracked(F) FILE a, tracked(F) FILE b) [F] { }
void ok() {
  tracked(A) FILE f = fopen("x");
  both(f, f);
  fclose(f);
}
)");
  EXPECT_FALSE(C->diags().hasErrors()) << C->diags().render();

  auto C2 = compile(R"(
type FILE;
tracked(@open) FILE fopen(string p);
void fclose(tracked(F) FILE) [-F];
void both(tracked(F) FILE a, tracked(F) FILE b) [F] { }
void bad() {
  tracked(A) FILE f = fopen("x");
  tracked(B) FILE g = fopen("y");
  both(f, g); // error: distinct resources where aliases declared
  fclose(f);
  fclose(g);
}
)");
  EXPECT_TRUE(C2->diags().hasErrors());
}

TEST(Elaborator, EffectOnUnknownKeyBindsSignatureKey) {
  // `[+K]` with K bound only through a parameter's type argument.
  auto C = compile("type EV<key K>; void wait(EV<K>) [+K];");
  const FuncSig *Sig = C->signatureOf("wait");
  ASSERT_NE(Sig, nullptr);
  EXPECT_EQ(Sig->SigKeys.size(), 1u);
  ASSERT_EQ(Sig->Effects.size(), 1u);
  EXPECT_EQ(Sig->Effects[0].M, EffectItem::Mode::Produce);
}

} // namespace
