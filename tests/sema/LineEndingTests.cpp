//===- LineEndingTests.cpp - LF / CRLF / CR diagnostic identity -----------===//
//
// The same program must produce byte-identical rendered diagnostics no
// matter how its lines are terminated: column drift on CRLF or lone-CR
// input would break editors that jump to reported positions, and would
// defeat the incremental cache's byte-identical-replay contract.
//
//===----------------------------------------------------------------------===//

#include "sema/Checker.h"

#include <gtest/gtest.h>

using namespace vault;

namespace {

/// A program with one flow error (a leaked region) and a tab-indented
/// body, exercising carets, notes and column math.
const char *LfProgram = "interface REGION {\n"
                        "\ttype region;\n"
                        "\ttracked(R) region create() [new R];\n"
                        "\tvoid delete(tracked(R) region) [-R];\n"
                        "}\n"
                        "extern module Region : REGION;\n"
                        "void leaky() {\n"
                        "\ttracked region r = Region.create();\n"
                        "}\n";

std::string withEnding(const std::string &Lf, const std::string &Eol) {
  std::string Out;
  for (char C : Lf)
    if (C == '\n')
      Out += Eol;
    else
      Out += C;
  return Out;
}

std::string renderOf(const std::string &Text) {
  auto C = checkVaultSource("t.vlt", Text);
  EXPECT_TRUE(C->diags().hasErrors());
  return C->diags().render();
}

TEST(LineEndings, CrlfRendersIdenticallyToLf) {
  EXPECT_EQ(renderOf(LfProgram), renderOf(withEnding(LfProgram, "\r\n")));
}

TEST(LineEndings, LoneCrRendersIdenticallyToLf) {
  EXPECT_EQ(renderOf(LfProgram), renderOf(withEnding(LfProgram, "\r")));
}

TEST(LineEndings, TabIndentedCaretReproducesTabs) {
  // The caret line re-emits the source line's tabs, so the caret sits
  // under the offending token at any tab width.
  std::string R = renderOf(LfProgram);
  EXPECT_NE(R.find("\ttracked region r"), std::string::npos) << R;
  EXPECT_NE(R.find("\t"), std::string::npos);
}

TEST(LineEndings, LineCommentsEndAtEveryTerminator) {
  // A '//' comment must not swallow the following line under CR or
  // CRLF endings: this program is clean under all three.
  std::string Lf = "// header comment\n"
                   "key L;\n"
                   "void ok() {\n"
                   "\tint x = 1; // trailing comment\n"
                   "}\n";
  for (const char *Eol : {"\n", "\r\n", "\r"}) {
    auto C = checkVaultSource("c.vlt", withEnding(Lf, Eol));
    EXPECT_FALSE(C->diags().hasErrors())
        << "ending " << (Eol[0] == '\n' ? "LF" : Eol[1] ? "CRLF" : "CR")
        << ":\n"
        << C->diags().render();
  }
}

} // namespace
