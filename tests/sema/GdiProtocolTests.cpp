//===- GdiProtocolTests.cpp - §6's graphics domain, statically ------------===//

#include "TestUtil.h"

#include "corpus/Corpus.h"

using namespace vault;
using namespace vault::test;

namespace {

std::string gdiPrelude() { return corpus::loadInclude("gdi.vlt"); }

TEST(GdiProtocol, CorrectSessionAccepted) {
  auto C = check(R"(
void main(HWND win) {
  tracked(@plain) HDC dc = BeginPaint(win);
  MoveTo(dc, 0, 0);
  LineTo(dc, 10, 10);
  EndPaint(win, dc);
}
)",
                 gdiPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(GdiProtocol, SelectConsumesThePenKey) {
  auto C = check(R"(
void main(HWND win) {
  tracked(@plain) HDC dc = BeginPaint(win);
  tracked(P) HPEN pen = CreatePen(1, 1);
  OLDPEN<P> old = SelectPen(dc, pen);
  DeletePen(pen); // error: the DC holds the pen's key now
  RestorePen(dc, old);
  EndPaint(win, dc);
}
)",
                 gdiPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyNotHeld);
}

TEST(GdiProtocol, RestoreReturnsThePenKey) {
  auto C = check(R"(
void main(HWND win) {
  tracked(@plain) HDC dc = BeginPaint(win);
  tracked(P) HPEN pen = CreatePen(1, 1);
  OLDPEN<P> old = SelectPen(dc, pen);
  LineTo(dc, 3, 3);
  RestorePen(dc, old);
  DeletePen(pen); // fine: key returned by RestorePen
  EndPaint(win, dc);
}
)",
                 gdiPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(GdiProtocol, EndPaintRequiresPlainState) {
  auto C = check(R"(
void main(HWND win) {
  tracked(@plain) HDC dc = BeginPaint(win);
  tracked(P) HPEN pen = CreatePen(1, 1);
  OLDPEN<P> old = SelectPen(dc, pen);
  EndPaint(win, dc); // error: DC is "custom"
  DeletePen(pen);
}
)",
                 gdiPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyWrongState);
}

TEST(GdiProtocol, DoubleRestoreRejected) {
  auto C = check(R"(
void main(HWND win) {
  tracked(@plain) HDC dc = BeginPaint(win);
  tracked(P) HPEN pen = CreatePen(1, 1);
  OLDPEN<P> old = SelectPen(dc, pen);
  RestorePen(dc, old);
  RestorePen(dc, old); // error: DC already "plain", and +P duplicates
  DeletePen(pen);
  EndPaint(win, dc);
}
)",
                 gdiPrelude());
  EXPECT_TRUE(C->diags().hasErrors());
}

TEST(GdiProtocol, TwoDcsIndependent) {
  auto C = check(R"(
void main(HWND a, HWND b) {
  tracked(@plain) HDC dca = BeginPaint(a);
  tracked(@plain) HDC dcb = BeginPaint(b);
  LineTo(dca, 1, 1);
  EndPaint(a, dca);
  LineTo(dcb, 2, 2); // still live
  EndPaint(b, dcb);
}
)",
                 gdiPrelude());
  EXPECT_ACCEPTED(C);

  auto C2 = check(R"(
void main(HWND a, HWND b) {
  tracked(@plain) HDC dca = BeginPaint(a);
  tracked(@plain) HDC dcb = BeginPaint(b);
  EndPaint(a, dca);
  LineTo(dca, 1, 1); // error: dca released
  EndPaint(b, dcb);
}
)",
                  gdiPrelude());
  EXPECT_REJECTED_WITH(C2, DiagId::FlowKeyNotHeld);
}

TEST(GdiProtocol, PaintHelperWithEffectSignature) {
  // A drawing helper borrows the DC in the "custom" state.
  auto C = check(R"(
void drawBox(tracked(D) HDC dc, int size) [D@custom] {
  MoveTo(dc, 0, 0);
  LineTo(dc, size, 0);
  LineTo(dc, size, size);
  LineTo(dc, 0, size);
  LineTo(dc, 0, 0);
}
void main(HWND win) {
  tracked(@plain) HDC dc = BeginPaint(win);
  tracked(P) HPEN pen = CreatePen(1, 1);
  OLDPEN<P> old = SelectPen(dc, pen);
  drawBox(dc, 16);
  RestorePen(dc, old);
  DeletePen(pen);
  EndPaint(win, dc);
}
)",
                 gdiPrelude());
  EXPECT_ACCEPTED(C);

  // Calling it with a plain DC violates the precondition.
  auto C2 = check(R"(
void drawBox(tracked(D) HDC dc, int size) [D@custom] {
  LineTo(dc, size, size);
}
void main(HWND win) {
  tracked(@plain) HDC dc = BeginPaint(win);
  drawBox(dc, 16); // error: DC is "plain"
  EndPaint(win, dc);
}
)",
                  gdiPrelude());
  EXPECT_REJECTED_WITH(C2, DiagId::FlowKeyWrongState);
}

TEST(GdiProtocol, PenLeakRejected) {
  auto C = check(R"(
void main(HWND win) {
  tracked(@plain) HDC dc = BeginPaint(win);
  tracked(P) HPEN pen = CreatePen(1, 1);
  EndPaint(win, dc);
  // BUG: pen never deleted.
}
)",
                 gdiPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyLeaked);
}

} // namespace
