//===- CheckerMiscTests.cpp - Name resolution, arity, misc sema -----------===//

#include "TestUtil.h"

using namespace vault;
using namespace vault::test;

namespace {

TEST(CheckerMisc, UnknownName) {
  auto C = check("void f() { x = 1; }");
  EXPECT_REJECTED_WITH(C, DiagId::SemaUnknownName);
}

TEST(CheckerMisc, UnknownType) {
  auto C = check("void f(Widget w) { }");
  EXPECT_REJECTED_WITH(C, DiagId::SemaUnknownType);
}

TEST(CheckerMisc, UnknownFunction) {
  auto C = check("void f() { g(); }");
  EXPECT_REJECTED_WITH(C, DiagId::SemaUnknownName);
}

TEST(CheckerMisc, ArityMismatch) {
  auto C = check("void g(int a, int b); void f() { g(1); }");
  EXPECT_REJECTED_WITH(C, DiagId::SemaArity);
}

TEST(CheckerMisc, ArgumentTypeMismatch) {
  auto C = check("void g(int a); void f(bool b) { g(b); }");
  EXPECT_REJECTED_WITH(C, DiagId::SemaTypeMismatch);
}

TEST(CheckerMisc, RedefinedFunction) {
  auto C = check("void f() {} void f() {}");
  EXPECT_REJECTED_WITH(C, DiagId::SemaRedefinition);
}

TEST(CheckerMisc, PrototypeThenDefinitionOk) {
  auto C = check("void f(); void f() {}");
  EXPECT_ACCEPTED(C);
}

TEST(CheckerMisc, RedefinedLocal) {
  auto C = check("void f() { int x = 1; int x = 2; }");
  EXPECT_REJECTED_WITH(C, DiagId::SemaRedefinition);
}

TEST(CheckerMisc, ShadowingInInnerScopeAllowed) {
  auto C = check("void f() { int x = 1; { int x = 2; x++; } x++; }");
  EXPECT_ACCEPTED(C);
}

TEST(CheckerMisc, UnknownCtor) {
  auto C = check("variant v [ 'A | 'B ]; void f(v x) { y = 'C; }");
  EXPECT_REJECTED_WITH(C, DiagId::SemaUnknownCtor);
}

TEST(CheckerMisc, CtorFromWrongVariantInSwitch) {
  auto C = check(R"(
variant v [ 'A | 'B ];
variant w [ 'C ];
void f(v x) {
  switch (x) {
    case 'A:
    case 'C: // not a member of v
      return;
  }
}
)");
  EXPECT_REJECTED_WITH(C, DiagId::SemaUnknownCtor);
}

TEST(CheckerMisc, DuplicateSwitchCase) {
  auto C = check(R"(
variant v [ 'A | 'B ];
void f(v x) {
  switch (x) {
    case 'A:
    case 'A:
    case 'B:
      return;
  }
}
)");
  EXPECT_REJECTED_WITH(C, DiagId::SemaDuplicateCase);
}

TEST(CheckerMisc, NonExhaustiveSwitchWarns) {
  auto C = check(R"(
variant v [ 'A | 'B ];
void f(v x) {
  switch (x) {
    case 'A:
      return;
  }
}
)");
  EXPECT_ACCEPTED(C); // Warning only.
  EXPECT_TRUE(C->diags().has(DiagId::SemaNonExhaustiveSwitch));
}

TEST(CheckerMisc, UnknownField) {
  auto C = check("struct p { int x; } void f(p q) { q.z = 1; }");
  EXPECT_REJECTED_WITH(C, DiagId::SemaUnknownField);
}

TEST(CheckerMisc, FieldOfNonRecord) {
  auto C = check("void f(int x) { x.y = 1; }");
  EXPECT_REJECTED_WITH(C, DiagId::SemaNotARecord);
}

TEST(CheckerMisc, FreeOfNonTracked) {
  auto C = check("void f(int x) { free(x); }");
  EXPECT_REJECTED_WITH(C, DiagId::SemaNotTracked);
}

TEST(CheckerMisc, UninitializedTrackedUse) {
  auto C = check(std::string("void f() { tracked region r; Region.delete(r); }"),
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowUninitialized);
}

TEST(CheckerMisc, UninitializedPlainIsUsable) {
  auto C = check("struct p { int x; } void f() { p q; q.x = 1; }");
  EXPECT_ACCEPTED(C);
}

TEST(CheckerMisc, NonVoidMustReturn) {
  auto C = check("int f(bool b) { if (b) { return 1; } }");
  EXPECT_REJECTED_WITH(C, DiagId::FlowReturnValue);
}

TEST(CheckerMisc, VoidReturnWithValueRejected) {
  auto C = check("void f() { return 3; }");
  EXPECT_REJECTED_WITH(C, DiagId::FlowReturnValue);
}

TEST(CheckerMisc, ReturnTypeMismatch) {
  auto C = check("int f() { return true; }");
  EXPECT_REJECTED_WITH(C, DiagId::FlowReturnValue);
}

TEST(CheckerMisc, ConditionMustBeBool) {
  auto C = check("void f(int x) { if (x) { } }");
  // Accessing an int where bool is needed is a type error in strict
  // mode; we accept any diagnostics as long as the program is flagged.
  EXPECT_TRUE(C->diags().hasErrors() ||
              !C->diags().diagnostics().empty());
}

TEST(CheckerMisc, LogicalOperatorsTypeChecked) {
  auto C = check("void f(int x, bool b) { bool c = b && (x > 0); }");
  EXPECT_ACCEPTED(C);
  auto C2 = check("void f(int x, bool b) { bool c = b && x; }");
  EXPECT_REJECTED_WITH(C2, DiagId::SemaTypeMismatch);
}

TEST(CheckerMisc, ModuleResolution) {
  auto C = check(std::string(R"(
void f() {
  tracked(R) region r = Region.create();
  Region.delete(r);
}
)"),
                 regionPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(CheckerMisc, UnknownModuleMember) {
  auto C = check(std::string("void f() { Region.destroy(1); }"),
                 regionPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::SemaBadModule);
}

TEST(CheckerMisc, ModuleAgainstUnknownInterface) {
  auto C = check("extern module M : NOPE;");
  EXPECT_REJECTED_WITH(C, DiagId::SemaBadModule);
}

TEST(CheckerMisc, StatesetRedefinition) {
  auto C = check("stateset S = [ a < b ]; stateset S = [ c ];");
  EXPECT_REJECTED_WITH(C, DiagId::SemaRedefinition);
}

TEST(CheckerMisc, GlobalKeyWithUnknownStateset) {
  auto C = check("key K @ MISSING;");
  EXPECT_REJECTED_WITH(C, DiagId::SemaUnknownState);
}

TEST(CheckerMisc, UnknownStateInEffect) {
  auto C = check(R"(
stateset L = [ lo < hi ];
key G @ L;
void f() [G @ nonexistent];
)");
  EXPECT_REJECTED_WITH(C, DiagId::SemaUnknownState);
}

TEST(CheckerMisc, VariantCtorArity) {
  auto C = check(R"(
variant v [ 'Pair(int, int) ];
void f(v x) { y = 'Pair(1); }
)");
  EXPECT_REJECTED_WITH(C, DiagId::SemaArity);
}

TEST(CheckerMisc, GenericArityMismatch) {
  auto C = check("type box<type T> = T; void f(box<int, int> b) {}");
  EXPECT_REJECTED_WITH(C, DiagId::SemaArity);
}

TEST(CheckerMisc, StatsPopulated) {
  auto C = check("void a() {} void b() {} void c();");
  EXPECT_ACCEPTED(C);
  EXPECT_EQ(C->stats().FunctionsChecked, 2u);
  EXPECT_EQ(C->stats().FunctionsWithBodies, 2u);
  EXPECT_GE(C->stats().DeclsRegistered, 3u);
}

} // namespace
