//===- CompilationTests.cpp - Multi-file compilation and determinism ------===//

#include "TestUtil.h"

#include "corpus/Corpus.h"
#include "interp/Interp.h"

using namespace vault;
using namespace vault::test;

namespace {

TEST(Compilation, InterfaceAndProgramInSeparateUnits) {
  VaultCompiler C;
  C.addSource("region_iface.vlt", regionPrelude());
  C.addSource("program.vlt", R"(
void main() {
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {x=1; y=2;};
  pt.x++;
  Region.delete(rgn);
}
)");
  EXPECT_TRUE(C.check()) << C.diags().render();
}

TEST(Compilation, ErrorsPointIntoTheRightUnit) {
  VaultCompiler C;
  C.addSource("region_iface.vlt", regionPrelude());
  C.addSource("buggy.vlt", R"(
void main() {
  tracked(R) region rgn = Region.create();
  Region.delete(rgn);
  Region.delete(rgn);
}
)");
  EXPECT_FALSE(C.check());
  bool FoundInBuggy = false;
  for (const Diagnostic &D : C.diags().diagnostics()) {
    PresumedLoc P = C.sources().presumed(D.Loc);
    if (P.isValid() && P.BufferName == "buggy.vlt")
      FoundInBuggy = true;
  }
  EXPECT_TRUE(FoundInBuggy);
}

TEST(Compilation, CrossUnitFunctionCalls) {
  VaultCompiler C;
  C.addSource("lib.vlt", std::string(regionPrelude()) + R"(
void finish(tracked(K) region r) [-K] {
  Region.delete(r);
}
)");
  C.addSource("app.vlt", R"(
void main() {
  tracked(R) region rgn = Region.create();
  finish(rgn);
}
)");
  EXPECT_TRUE(C.check()) << C.diags().render();
}

TEST(Compilation, DuplicateAcrossUnitsDiagnosed) {
  VaultCompiler C;
  C.addSource("a.vlt", "void f() {}");
  C.addSource("b.vlt", "void f() {}");
  EXPECT_FALSE(C.check());
  EXPECT_TRUE(C.diags().has(DiagId::SemaRedefinition));
}

class Determinism : public ::testing::TestWithParam<corpus::ProgramInfo> {};

TEST_P(Determinism, CheckingIsDeterministic) {
  // Re-checking a program yields the identical diagnostic sequence —
  // key numbering, ordering, and messages must not depend on run
  // state.
  const auto &P = GetParam();
  auto C1 = corpus::check(P.Name);
  auto C2 = corpus::check(P.Name);
  ASSERT_EQ(C1->diags().diagnostics().size(),
            C2->diags().diagnostics().size());
  for (size_t I = 0; I != C1->diags().diagnostics().size(); ++I) {
    const Diagnostic &A = C1->diags().diagnostics()[I];
    const Diagnostic &B = C2->diags().diagnostics()[I];
    EXPECT_EQ(A.Id, B.Id);
    EXPECT_EQ(A.Message, B.Message);
    EXPECT_EQ(A.Loc.Offset, B.Loc.Offset);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, Determinism, ::testing::ValuesIn(corpus::index()),
    [](const ::testing::TestParamInfo<corpus::ProgramInfo> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST(Compilation, RunIsDeterministicToo) {
  // Two interpreter runs of the same program produce identical output
  // and oracle state.
  auto C = corpus::check("figures/fig3_server_ok");
  ASSERT_FALSE(C->diags().hasErrors());
  auto RunOnce = [&] {
    vault::interp::Interp I(*C);
    I.run("main");
    return std::make_pair(I.output(), I.totalViolations());
  };
  auto A = RunOnce();
  auto B = RunOnce();
  EXPECT_EQ(A.first, B.first);
  EXPECT_EQ(A.second, B.second);
}

} // namespace
