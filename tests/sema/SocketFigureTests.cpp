//===- SocketFigureTests.cpp - Paper §2.3 / Figure 3 ----------------------===//

#include "TestUtil.h"

using namespace vault;
using namespace vault::test;

namespace {

TEST(SocketFigures, CorrectSequenceAccepted) {
  auto C = check(R"(
void server(sockaddr addr, byte[] buf) {
  tracked(@raw) sock s = socket('UNIX, 'STREAM, 0);
  bind(s, addr);
  listen(s, 5);
  tracked(N) sock conn = accept(s, addr);
  receive(conn, buf);
  close(conn);
  close(s);
}
)",
                 socketPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(SocketFigures, MissingBindRejected) {
  auto C = check(R"(
void server(sockaddr addr) {
  tracked(@raw) sock s = socket('UNIX, 'STREAM, 0);
  listen(s, 5);
  close(s);
}
)",
                 socketPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyWrongState);
}

TEST(SocketFigures, MissingListenRejected) {
  auto C = check(R"(
void server(sockaddr addr, byte[] buf) {
  tracked(@raw) sock s = socket('UNIX, 'STREAM, 0);
  bind(s, addr);
  tracked(N) sock conn = accept(s, addr);
  receive(conn, buf);
  close(conn);
  close(s);
}
)",
                 socketPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyWrongState);
}

TEST(SocketFigures, ReceiveOnListeningSocketRejected) {
  auto C = check(R"(
void server(sockaddr addr, byte[] buf) {
  tracked(@raw) sock s = socket('UNIX, 'STREAM, 0);
  bind(s, addr);
  listen(s, 5);
  receive(s, buf); // must receive on the accepted connection
  close(s);
}
)",
                 socketPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyWrongState);
}

TEST(SocketFigures, DoubleBindRejected) {
  auto C = check(R"(
void server(sockaddr addr) {
  tracked(@raw) sock s = socket('UNIX, 'STREAM, 0);
  bind(s, addr);
  bind(s, addr);
  close(s);
}
)",
                 socketPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyWrongState);
}

TEST(SocketFigures, SocketLeakRejected) {
  auto C = check(R"(
void server(sockaddr addr) {
  tracked(@raw) sock s = socket('UNIX, 'STREAM, 0);
  bind(s, addr);
}
)",
                 socketPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyLeaked);
}

TEST(SocketFigures, UseAfterCloseRejected) {
  auto C = check(R"(
void server(sockaddr addr) {
  tracked(@raw) sock s = socket('UNIX, 'STREAM, 0);
  close(s);
  bind(s, addr);
}
)",
                 socketPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyNotHeld);
}

TEST(SocketFigures, UncheckedFallibleBindRejected) {
  // §2.3: "Here, the call to bind removes the socket's key from the
  // held-key set, hence the precondition for listen is violated."
  auto C = check(R"(
void server(sockaddr addr) {
  tracked(@raw) sock s = socket('UNIX, 'STREAM, 0);
  bind2(s, addr);
  listen(s, 0);
  close(s);
}
)",
                 socketPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyNotHeld);
}

TEST(SocketFigures, CheckedFallibleBindAccepted) {
  auto C = check(R"(
void server(sockaddr addr) {
  tracked(@raw) sock s = socket('UNIX, 'STREAM, 0);
  switch (bind2(s, addr)) {
    case 'Ok:
      listen(s, 0);
      close(s);
    case 'Error(code):
      close(s);
  }
}
)",
                 socketPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(SocketFigures, ErrorArmKeyIsBackInRawState) {
  // In the 'Error case the key is restored in state "raw" — so a
  // retry bind is legal, but listen is not.
  auto C = check(R"(
void retry(sockaddr addr) {
  tracked(@raw) sock s = socket('UNIX, 'STREAM, 0);
  switch (bind2(s, addr)) {
    case 'Ok:
      close(s);
    case 'Error(code):
      bind(s, addr); // legal: raw again
      close(s);
  }
}
)",
                 socketPrelude());
  EXPECT_ACCEPTED(C);

  auto C2 = check(R"(
void bad(sockaddr addr) {
  tracked(@raw) sock s = socket('UNIX, 'STREAM, 0);
  switch (bind2(s, addr)) {
    case 'Ok:
      close(s);
    case 'Error(code):
      listen(s, 1); // error: still raw
      close(s);
  }
}
)",
                  socketPrelude());
  EXPECT_REJECTED_WITH(C2, DiagId::FlowKeyWrongState);
}

TEST(SocketFigures, AcceptReturnsDistinctReadySocket) {
  auto C = check(R"(
void server(sockaddr addr, byte[] buf) {
  tracked(@raw) sock s = socket('UNIX, 'STREAM, 0);
  bind(s, addr);
  listen(s, 5);
  tracked(N) sock conn = accept(s, addr);
  // The listener is not "ready"; the connection is.
  receive(conn, buf);
  // And accept can be repeated on the listener.
  tracked(M) sock conn2 = accept(s, addr);
  close(conn2);
  close(conn);
  close(s);
}
)",
                 socketPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(SocketFigures, StateRestoredOnBothBranchesMustAgree) {
  auto C = check(R"(
void cond(sockaddr addr, bool flip) {
  tracked(@raw) sock s = socket('UNIX, 'STREAM, 0);
  if (flip) {
    bind(s, addr);
  }
  // Join: raw on one path, named on the other.
  close(s);
}
)",
                 socketPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowJoinMismatch);
}

TEST(SocketFigures, SameProtocolStepOnBothBranchesAccepted) {
  auto C = check(R"(
void cond(sockaddr a, sockaddr b, bool flip) {
  tracked(@raw) sock s = socket('UNIX, 'STREAM, 0);
  if (flip) {
    bind(s, a);
  } else {
    bind(s, b);
  }
  listen(s, 5);
  close(s);
}
)",
                 socketPrelude());
  EXPECT_ACCEPTED(C);
}

} // namespace
