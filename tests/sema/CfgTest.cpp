//===- CfgTest.cpp - Control-flow graph construction ----------------------===//

#include "TestUtil.h"

#include "sema/Cfg.h"

using namespace vault;
using namespace vault::test;

namespace {

const FuncDecl *firstFunc(VaultCompiler &C) {
  for (const Decl *D : C.ast().program().Decls)
    if (const auto *F = dyn_cast<FuncDecl>(D); F && F->body())
      return F;
  return nullptr;
}

TEST(Cfg, StraightLine) {
  auto C = check("void f() { int a = 1; a++; a--; }");
  const FuncDecl *F = firstFunc(*C);
  ASSERT_NE(F, nullptr);
  Cfg G = Cfg::build(F);
  // Entry and exit plus no extra blocks needed beyond entry's chain.
  EXPECT_GE(G.numNodes(), 2u);
  EXPECT_TRUE(G.unreachableNodes().empty());
}

TEST(Cfg, IfElseDiamond) {
  auto C = check("void f(bool b) { if (b) { int x = 1; } else { int y = 2; } "
                 "int z = 3; }");
  Cfg G = Cfg::build(firstFunc(*C));
  // entry, then, else, join, exit at minimum.
  EXPECT_GE(G.numNodes(), 5u);
  EXPECT_GE(G.numEdges(), 4u);
  EXPECT_TRUE(G.unreachableNodes().empty());
}

TEST(Cfg, WhileHasBackEdge) {
  auto C = check("void f(int n) { int i = 0; while (i < n) { i++; } }");
  Cfg G = Cfg::build(firstFunc(*C));
  // Find a back edge: an edge to a node with a smaller id that has a
  // Terminator (the loop head).
  bool BackEdge = false;
  for (const CfgNode &N : G.nodes())
    for (unsigned S : N.Succs)
      if (S < N.Id && G.nodes()[S].Terminator)
        BackEdge = true;
  EXPECT_TRUE(BackEdge);
}

TEST(Cfg, ReturnEndsBlock) {
  auto C = check("int f(bool b) { if (b) { return 1; } return 2; }");
  Cfg G = Cfg::build(firstFunc(*C));
  // The exit node must have at least two predecessors.
  unsigned ExitPreds = 0;
  for (const CfgNode &N : G.nodes())
    for (unsigned S : N.Succs)
      if (S == G.exit())
        ++ExitPreds;
  EXPECT_GE(ExitPreds, 2u);
}

TEST(Cfg, SwitchFansOut) {
  auto C = check(R"(
variant v [ 'A | 'B | 'C ];
void f(v x) {
  switch (x) {
    case 'A: return;
    case 'B: return;
    case 'C: return;
  }
}
)");
  Cfg G = Cfg::build(firstFunc(*C));
  // The entry block branches to three arms.
  EXPECT_GE(G.nodes()[G.entry()].Succs.size(), 3u);
}

TEST(Cfg, UnreachableAfterReturn) {
  auto C = check("int f() { return 1; }");
  Cfg G = Cfg::build(firstFunc(*C));
  EXPECT_TRUE(G.unreachableNodes().size() <= 1u); // only the dangling exit-chain
}

TEST(Cfg, DotOutput) {
  auto C = check("void f(bool b) { if (b) { int x = 1; } }");
  Cfg G = Cfg::build(firstFunc(*C));
  std::string Dot = G.dot();
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  EXPECT_NE(Dot.find("->"), std::string::npos);
}

} // namespace
