//===- IrqlTests.cpp - Paper §4.4 interrupt levels and paged memory -------===//

#include "TestUtil.h"

using namespace vault;
using namespace vault::test;

namespace {

const char *GeoPrelude = R"(
struct DISK_GEOMETRY { int cylinders; int heads; int sectors; }
int readGeometry(paged<DISK_GEOMETRY> geo) [IRQL @ (lvl <= APC_LEVEL)];
)";

TEST(Irql, ExactLevelRequirement) {
  auto C = check(R"(
void ok() [IRQL @ PASSIVE_LEVEL] {
  KeSetPriorityThread(5);
}
)",
                 kernelPrelude());
  EXPECT_ACCEPTED(C);

  auto C2 = check(R"(
void bad() [IRQL @ DISPATCH_LEVEL] {
  KeSetPriorityThread(5); // needs PASSIVE_LEVEL
}
)",
                  kernelPrelude());
  EXPECT_REJECTED_WITH(C2, DiagId::FlowKeyWrongState);
}

TEST(Irql, BoundedPolymorphismSatisfiedByLowerBound) {
  // KeReleaseSemaphore accepts any level <= DISPATCH_LEVEL.
  auto C = check(R"(
void fromPassive() [IRQL @ PASSIVE_LEVEL] { KeReleaseSemaphore(1); }
void fromApc() [IRQL @ APC_LEVEL] { KeReleaseSemaphore(1); }
void fromDispatch() [IRQL @ DISPATCH_LEVEL] { KeReleaseSemaphore(1); }
void polymorphic() [IRQL @ (level <= DISPATCH_LEVEL)] {
  KeReleaseSemaphore(1);
}
)",
                 kernelPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(Irql, BoundedPolymorphismViolatedAboveBound) {
  auto C = check(R"(
void fromDirql() [IRQL @ DIRQL] {
  KeReleaseSemaphore(1); // DIRQL > DISPATCH_LEVEL
}
)",
                 kernelPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyWrongState);
}

TEST(Irql, SymbolicCallerBoundImpliesCalleeBound) {
  // A caller bounded by APC_LEVEL may call a callee bounded by
  // DISPATCH_LEVEL, but not vice versa.
  auto C = check(R"(
void callee() [IRQL @ (a <= DISPATCH_LEVEL)] {}
void caller() [IRQL @ (b <= APC_LEVEL)] { callee(); }
)",
                 kernelPrelude());
  EXPECT_ACCEPTED(C);

  auto C2 = check(R"(
void callee() [IRQL @ (a <= APC_LEVEL)] {}
void caller() [IRQL @ (b <= DISPATCH_LEVEL)] { callee(); }
)",
                  kernelPrelude());
  EXPECT_REJECTED_WITH(C2, DiagId::FlowKeyWrongState);
}

TEST(Irql, SpinLockRaisesAndRestores) {
  auto C = check(std::string(GeoPrelude) + R"(
void ok(LOCK<Q> lock, Q:QUEUE q, paged<DISK_GEOMETRY> geo)
    [IRQL @ PASSIVE_LEVEL] {
  int before = readGeometry(geo);
  KIRQL<old> saved = KeAcquireSpinLock(lock);
  tracked popt item = Dequeue(q);
  KeReleaseSpinLock(lock, saved);
  int after = readGeometry(geo); // back at PASSIVE_LEVEL
  switch (item) {
    case 'NoIrp:
      return;
    case 'GotIrp(irp):
      IoCompleteRequest(irp, 0);
  }
}
)",
                 kernelPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(Irql, PagedCallAtDispatchRejected) {
  auto C = check(std::string(GeoPrelude) + R"(
void bad(LOCK<Q> lock, paged<DISK_GEOMETRY> geo) [IRQL @ PASSIVE_LEVEL] {
  KIRQL<old> saved = KeAcquireSpinLock(lock);
  int n = readGeometry(geo); // at DISPATCH_LEVEL: pager cannot run
  KeReleaseSpinLock(lock, saved);
}
)",
                 kernelPrelude());
  EXPECT_REJECTED_WITH(C, DiagId::FlowKeyWrongState);
}

TEST(Irql, PagedDirectAccessGuarded) {
  // Accessing paged<T> data directly is guarded by the IRQL.
  auto C = check(std::string(GeoPrelude) + R"(
int ok(paged<DISK_GEOMETRY> geo) [IRQL @ PASSIVE_LEVEL] {
  return geo.cylinders;
}
)",
                 kernelPrelude());
  EXPECT_ACCEPTED(C);

  auto C2 = check(std::string(GeoPrelude) + R"(
int bad(LOCK<Q> lock, paged<DISK_GEOMETRY> geo) [IRQL @ PASSIVE_LEVEL] {
  KIRQL<old> saved = KeAcquireSpinLock(lock);
  int n = geo.cylinders; // guard: IRQL <= APC_LEVEL, but at DISPATCH
  KeReleaseSpinLock(lock, saved);
  return n;
}
)",
                  kernelPrelude());
  EXPECT_REJECTED_WITH(C2, DiagId::FlowGuardWrongState);
}

TEST(Irql, LevelChangeMustBeRestoredAtExit) {
  // A function promising to stay at PASSIVE must lower before exit.
  auto C = check(R"(
void forgets(LOCK<Q> lock) [IRQL @ PASSIVE_LEVEL] {
  KIRQL<old> saved = KeAcquireSpinLock(lock);
  // BUG: never releases, so IRQL is DISPATCH at exit.
}
)",
                 kernelPrelude());
  EXPECT_TRUE(C->diags().hasErrors()) << C->diags().render();
}

TEST(Irql, DeclaredLevelTransitionAccepted) {
  auto C = check(R"(
void raise(LOCK<Q> lock) [IRQL @ PASSIVE_LEVEL -> DISPATCH_LEVEL, +Q] {
  KIRQL<old> saved = KeAcquireSpinLock(lock);
}
)",
                 kernelPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(Irql, SavedLevelValueRestoresCorrectLevel) {
  // KIRQL<level> captures the pre-acquire level in the value's type;
  // releasing with it restores exactly that level.
  auto C = check(R"(
void nestedLocks(LOCK<A2> l1, LOCK<B2> l2) [IRQL @ PASSIVE_LEVEL] {
  KIRQL<s1> save1 = KeAcquireSpinLock(l1);  // PASSIVE -> DISPATCH
  KIRQL<s2> save2 = KeAcquireSpinLock(l2);  // DISPATCH -> DISPATCH
  KeReleaseSpinLock(l2, save2);             // back to DISPATCH
  KeReleaseSpinLock(l1, save1);             // back to PASSIVE
  KeSetPriorityThread(1);                   // requires PASSIVE: ok
}
)",
                 kernelPrelude());
  EXPECT_ACCEPTED(C);
}

TEST(Irql, ReleasingInWrongOrderLeavesWrongLevel) {
  auto C = check(R"(
void wrongOrder(LOCK<A2> l1, LOCK<B2> l2) [IRQL @ PASSIVE_LEVEL] {
  KIRQL<s1> save1 = KeAcquireSpinLock(l1);  // saves PASSIVE
  KIRQL<s2> save2 = KeAcquireSpinLock(l2);  // saves DISPATCH
  KeReleaseSpinLock(l2, save1);             // restores PASSIVE too early
  KeReleaseSpinLock(l1, save2);             // "restores" DISPATCH
}
)",
                 kernelPrelude());
  // Exit promises PASSIVE_LEVEL but the level is DISPATCH_LEVEL; also
  // the inner release happens below DISPATCH_LEVEL.
  EXPECT_TRUE(C->diags().hasErrors()) << C->diags().render();
}

} // namespace
